"""Tests for the extension features: belief priors, multi-resolution
solving, continuous refinement, the serial BP schedule, and the DOI radio.
"""

import numpy as np
import pytest

from repro.core import (
    Grid2D,
    GridBPConfig,
    GridBPLocalizer,
    MultiResolutionLocalizer,
    refine_estimates,
)
from repro.measurement import ConnectivityOnly, GaussianRanging, observe
from repro.network import IrregularRadio, NetworkConfig, UnitDiskRadio, generate_network
from repro.priors import GridBeliefPrior


@pytest.fixture(scope="module")
def net():
    return generate_network(
        NetworkConfig(
            n_nodes=60,
            anchor_ratio=0.15,
            radio=UnitDiskRadio(0.25),
            require_connected=True,
        ),
        rng=7,
    )


@pytest.fixture(scope="module")
def ms(net):
    return observe(net, GaussianRanging(0.02), rng=8)


def mean_err(result, net):
    return float(np.nanmean(result.errors(net.positions)[~net.anchor_mask]))


class TestGridBeliefPrior:
    GRID = Grid2D(10)

    def _delta_belief(self, cell):
        b = np.zeros(self.GRID.n_cells)
        b[cell] = 1.0
        return b

    def test_same_grid_passthrough(self):
        b = np.random.default_rng(0).uniform(size=self.GRID.n_cells)
        prior = GridBeliefPrior(self.GRID, {3: b}, floor=0.0)
        w = prior.grid_weights(3, self.GRID)
        np.testing.assert_allclose(w, b / b.sum())

    def test_unknown_node_flat(self):
        prior = GridBeliefPrior(self.GRID, {0: self._delta_belief(5)})
        w = prior.grid_weights(42, self.GRID)
        np.testing.assert_allclose(w, 1.0 / self.GRID.n_cells)

    def test_floor_keeps_support_everywhere(self):
        prior = GridBeliefPrior(self.GRID, {0: self._delta_belief(5)}, floor=1e-3)
        w = prior.grid_weights(0, self.GRID)
        assert (w > 0).all()
        assert np.argmax(w) == 5

    def test_diffusion_spreads(self):
        tight = GridBeliefPrior(self.GRID, {0: self._delta_belief(44)}, floor=0.0)
        wide = GridBeliefPrior(
            self.GRID, {0: self._delta_belief(44)}, diffusion_sigma=0.2, floor=0.0
        )
        assert wide.grid_weights(0, self.GRID).max() < tight.grid_weights(0, self.GRID).max()

    def test_cross_resolution_transfer(self):
        fine = Grid2D(20)
        prior = GridBeliefPrior(self.GRID, {0: self._delta_belief(44)}, floor=0.0)
        w = prior.grid_weights(0, fine)
        assert w.shape == (fine.n_cells,)
        assert w.sum() == pytest.approx(1.0)
        peak_fine = fine.centers[np.argmax(w)]
        peak_coarse = self.GRID.centers[44]
        assert np.linalg.norm(peak_fine - peak_coarse) < self.GRID.cell_diagonal

    def test_log_density_matches_cells(self):
        prior = GridBeliefPrior(self.GRID, {0: self._delta_belief(7)}, floor=0.0)
        ld = prior.log_density(0, self.GRID.centers[[7, 8]])
        assert ld[0] > ld[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            GridBeliefPrior(self.GRID, {0: np.zeros(self.GRID.n_cells)})
        with pytest.raises(ValueError):
            GridBeliefPrior(self.GRID, {0: np.ones(5)})
        with pytest.raises(ValueError):
            GridBeliefPrior(self.GRID, {}, diffusion_sigma=-1)
        with pytest.raises(ValueError):
            GridBeliefPrior(self.GRID, {}, floor=1.0)


class TestMultiResolutionLocalizer:
    def test_accuracy_comparable_to_fine_single(self, net, ms):
        single = GridBPLocalizer(
            config=GridBPConfig(grid_size=20, max_iterations=10)
        ).localize(ms)
        multi = MultiResolutionLocalizer(levels=(10, 20)).localize(ms)
        assert mean_err(multi, net) < mean_err(single, net) + 0.02

    def test_method_name_and_accounting(self, ms):
        res = MultiResolutionLocalizer(levels=(8, 16)).localize(ms)
        assert res.method == "grid-bp-multires"
        assert res.messages_sent > 0
        assert res.localized_mask.all()

    def test_single_level_equals_plain(self, ms):
        multi = MultiResolutionLocalizer(
            levels=(15,), iterations_per_level=(10,)
        ).localize(ms)
        plain = GridBPLocalizer(
            config=GridBPConfig(grid_size=15, max_iterations=10)
        ).localize(ms)
        np.testing.assert_allclose(multi.estimates, plain.estimates)

    def test_prior_at_coarse_level_helps(self, net, ms):
        from repro.priors import PerNodePrior

        prior = PerNodePrior(net.positions, sigma=0.05)
        with_pk = MultiResolutionLocalizer(prior=prior, levels=(8, 16)).localize(ms)
        without = MultiResolutionLocalizer(levels=(8, 16)).localize(ms)
        assert mean_err(with_pk, net) < mean_err(without, net) + 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiResolutionLocalizer(levels=())
        with pytest.raises(ValueError):
            MultiResolutionLocalizer(levels=(16, 8))
        with pytest.raises(ValueError):
            MultiResolutionLocalizer(levels=(8, 16), iterations_per_level=(3,))
        with pytest.raises(ValueError):
            MultiResolutionLocalizer(levels=(8,), iterations_per_level=(0,))

    def test_per_level_detail_and_aggregates(self, ms):
        """Regression: the ladder used to mutate the finest level's result
        in place, leaving ``converged`` meaning "last level converged"
        while ``n_iterations`` was the cross-level total."""
        res = MultiResolutionLocalizer(
            levels=(8, 16), iterations_per_level=(6, 4)
        ).localize(ms)
        levels = res.extras["levels"]
        assert [d["grid_size"] for d in levels] == [8, 16]
        assert res.n_iterations == sum(d["n_iterations"] for d in levels)
        assert res.converged == all(d["converged"] for d in levels)
        assert res.messages_sent == sum(d["messages_sent"] for d in levels)
        assert res.bytes_sent == sum(d["bytes_sent"] for d in levels)

    def test_does_not_mutate_level_result(self, ms):
        """The finest level's own result must keep its single-level
        accounting; the aggregate lives only in the fresh ladder result."""
        loc = MultiResolutionLocalizer(levels=(8, 16), iterations_per_level=(6, 4))
        res = loc.localize(ms)
        fine = res.extras["levels"][-1]
        # the ladder total includes the coarse level, so it must strictly
        # exceed what the finest level alone sent
        assert res.messages_sent > fine["messages_sent"]
        assert res.method == "grid-bp-multires"


class TestRefineEstimates:
    def test_improves_grid_estimate(self, net, ms):
        res = GridBPLocalizer(
            config=GridBPConfig(grid_size=15, max_iterations=10)
        ).localize(ms)
        refined = refine_estimates(ms, res)
        assert mean_err(refined, net) < mean_err(res, net)
        assert refined.method.endswith("+refine")

    def test_does_not_mutate_input(self, ms):
        res = GridBPLocalizer(
            config=GridBPConfig(grid_size=12, max_iterations=5)
        ).localize(ms)
        before = res.estimates.copy()
        refine_estimates(ms, res)
        np.testing.assert_array_equal(res.estimates, before)

    def test_max_step_bounds_motion(self, ms):
        res = GridBPLocalizer(
            config=GridBPConfig(grid_size=12, max_iterations=5)
        ).localize(ms)
        refined = refine_estimates(ms, res, max_step=0.01)
        moved = np.linalg.norm(refined.estimates - res.estimates, axis=1)
        assert moved.max() <= 0.01 + 1e-9

    def test_rejects_rangefree(self, net):
        ms_conn = observe(net, ConnectivityOnly(), rng=0)
        res = GridBPLocalizer(
            config=GridBPConfig(grid_size=12, max_iterations=3)
        ).localize(ms_conn)
        with pytest.raises(ValueError):
            refine_estimates(ms_conn, res)

    def test_validation(self, ms):
        res = GridBPLocalizer(
            config=GridBPConfig(grid_size=12, max_iterations=3)
        ).localize(ms)
        with pytest.raises(ValueError):
            refine_estimates(ms, res, n_sweeps=0)
        with pytest.raises(ValueError):
            refine_estimates(ms, res, max_step=0.0)


class TestSerialSchedule:
    def test_serial_propagates_within_one_sweep(self, net, ms):
        # After a single sweep, serial (Gauss–Seidel) has already moved
        # information across multiple hops, so its answer differs from the
        # one-round flooding schedule and is a usable estimate.
        serial = GridBPLocalizer(
            config=GridBPConfig(grid_size=15, max_iterations=1, schedule="serial")
        ).localize(ms)
        sync = GridBPLocalizer(
            config=GridBPConfig(grid_size=15, max_iterations=1, schedule="sync")
        ).localize(ms)
        assert not np.allclose(serial.estimates, sync.estimates)
        assert mean_err(serial, net) < 0.15

    def test_both_schedules_reach_similar_answers(self, net, ms):
        serial = GridBPLocalizer(
            config=GridBPConfig(grid_size=15, max_iterations=15, schedule="serial")
        ).localize(ms)
        sync = GridBPLocalizer(
            config=GridBPConfig(grid_size=15, max_iterations=15, schedule="sync")
        ).localize(ms)
        assert abs(mean_err(serial, net) - mean_err(sync, net)) < 0.02

    def test_deterministic(self, ms):
        cfg = GridBPConfig(grid_size=12, max_iterations=5, schedule="serial")
        a = GridBPLocalizer(config=cfg).localize(ms)
        b = GridBPLocalizer(config=cfg).localize(ms)
        np.testing.assert_array_equal(a.estimates, b.estimates)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError):
            GridBPConfig(schedule="random")


class TestIrregularRadio:
    POS = np.random.default_rng(3).uniform(size=(40, 2))

    def test_symmetric_no_selfloops(self):
        adj = IrregularRadio(0.25, doi=0.3).adjacency(self.POS, rng=0)
        assert np.array_equal(adj, adj.T)
        assert not adj.diagonal().any()

    def test_doi_zero_is_unit_disk(self):
        adj = IrregularRadio(0.25, doi=0.0).adjacency(self.POS, rng=0)
        disk = UnitDiskRadio(0.25).adjacency(self.POS, rng=0)
        np.testing.assert_array_equal(adj, disk)

    def test_links_bounded_by_extremes(self):
        radio = IrregularRadio(0.2, doi=0.3)
        adj = radio.adjacency(self.POS, rng=1)
        from repro.utils.geometry import pairwise_distances

        d = pairwise_distances(self.POS)
        assert not adj[d > 0.2 * 1.3].any()
        inner = (d <= 0.2 * 0.7) & ~np.eye(len(self.POS), dtype=bool)
        assert adj[inner].all()

    def test_p_detect_ramp(self):
        radio = IrregularRadio(0.2, doi=0.5)
        p = radio.p_detect(np.array([0.05, 0.2, 0.35]))
        assert p[0] == 1.0
        assert 0.0 < p[1] < 1.0
        assert p[2] == 0.0

    def test_reproducible(self):
        radio = IrregularRadio(0.25, doi=0.2)
        np.testing.assert_array_equal(
            radio.adjacency(self.POS, rng=5), radio.adjacency(self.POS, rng=5)
        )

    def test_localization_end_to_end(self):
        net = generate_network(
            NetworkConfig(
                n_nodes=60,
                anchor_ratio=0.15,
                radio=IrregularRadio(0.25, doi=0.2),
                require_connected=True,
            ),
            rng=2,
        )
        ms = observe(net, GaussianRanging(0.02), rng=3)
        res = GridBPLocalizer(
            config=GridBPConfig(grid_size=15, max_iterations=8)
        ).localize(ms)
        assert mean_err(res, net) < 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            IrregularRadio(0.2, doi=1.0)
        with pytest.raises(ValueError):
            IrregularRadio(0.2, n_harmonics=0)
        with pytest.raises(NotImplementedError):
            IrregularRadio(0.2).adjacency_from_distances(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            IrregularRadio(0.2).adjacency(np.zeros((3, 3)))


class TestMaxProduct:
    def test_joint_map_reasonable(self, net, ms):
        cfg = GridBPConfig(
            grid_size=15, max_iterations=8, max_product=True, estimator="map"
        )
        res = GridBPLocalizer(config=cfg).localize(ms)
        assert res.localized_mask.all()
        assert mean_err(res, net) < 0.15

    def test_differs_from_sum_product(self, ms):
        mp = GridBPLocalizer(
            config=GridBPConfig(grid_size=15, max_iterations=8, max_product=True)
        ).localize(ms)
        sp = GridBPLocalizer(
            config=GridBPConfig(grid_size=15, max_iterations=8, max_product=False)
        ).localize(ms)
        assert not np.allclose(mp.estimates, sp.estimates)

    def test_matches_exhaustive_on_tiny_chain(self):
        # 1 anchor - 1 unknown - 1 unknown chain on a coarse grid: the
        # max-product argmax must equal the exhaustive joint MAP.
        import itertools

        from repro.core.grid import Grid2D
        from repro.measurement import observe as _observe
        from repro.network import WSNetwork

        positions = np.array([[0.1, 0.5], [0.35, 0.5], [0.6, 0.5]])
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 0] = adj[1, 2] = adj[2, 1] = True
        netc = WSNetwork(
            positions, np.array([True, False, False]), adj, radio_range=0.4
        )
        msc = _observe(netc, GaussianRanging(0.02), rng=0)
        cfg = GridBPConfig(
            grid_size=6,
            max_iterations=20,
            max_product=True,
            estimator="map",
            use_negative_evidence=False,
            tol=1e-12,
        )
        loc = GridBPLocalizer(config=cfg)
        res = loc.localize(msc)

        # exhaustive joint MAP over the same potentials
        grid = res.extras["grid"]
        from repro.core.potentials import (
            anchor_ranging_potential,
            pairwise_ranging_potential,
        )
        from repro.network import UnitDiskRadio as UDR

        radio = UDR(0.4)
        blur = cfg.cell_blur_fraction * grid.cell_diagonal
        phi1 = anchor_ranging_potential(
            grid, positions[0], msc.observed_distances[1, 0], msc.ranging,
            radio, blur_sigma=blur,
        )
        psi = pairwise_ranging_potential(
            grid.pairwise_center_distances(),
            msc.observed_distances[1, 2],
            msc.ranging,
            radio,
            blur_sigma=blur,
        )
        joint = phi1[:, None] * psi
        k1, k2 = np.unravel_index(np.argmax(joint), joint.shape)
        np.testing.assert_allclose(res.estimates[1], grid.centers[k1], atol=1e-9)
        np.testing.assert_allclose(res.estimates[2], grid.centers[k2], atol=1e-9)
