"""Property-based invariance tests for the localization stack.

Geometric sanity laws any localizer must obey:

* translating the whole scenario translates the estimates,
* permuting node identities permutes the estimates,
* scaling distances scales lateration solutions,
* MDS is invariant to rigid motions of the input configuration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CentroidLocalizer, DVHopLocalizer, lateration
from repro.baselines.mds import classical_mds, procrustes_align
from repro.core import GridBPConfig, GridBPLocalizer
from repro.measurement import GaussianRanging, observe
from repro.network import NetworkConfig, UnitDiskRadio, WSNetwork, generate_network
from repro.utils.geometry import pairwise_distances


def small_network(seed=0):
    return generate_network(
        NetworkConfig(
            n_nodes=30,
            anchor_ratio=0.2,
            radio=UnitDiskRadio(0.35),
            require_connected=True,
        ),
        rng=seed,
    )


class TestTranslationEquivariance:
    def test_grid_bp_mirror_symmetry(self):
        # Mirroring the whole scenario about x = 0.5 maps the grid onto
        # itself (cell centers are symmetric) and preserves all pairwise
        # distances, so the estimates must mirror exactly.  This is the
        # rigid-motion equivariance law expressible on a fixed grid.
        net = small_network(1)
        mirrored = WSNetwork(
            positions=np.column_stack(
                [net.width - net.positions[:, 0], net.positions[:, 1]]
            ),
            anchor_mask=net.anchor_mask,
            adjacency=net.adjacency,
            width=net.width,
            height=net.height,
            radio_range=net.radio_range,
        )
        cfg = GridBPConfig(grid_size=12, max_iterations=5)
        ms_a = observe(net, GaussianRanging(0.02), rng=5)
        ms_b = observe(mirrored, GaussianRanging(0.02), rng=5)
        # congruent geometry, same noise stream -> identical observations
        np.testing.assert_allclose(
            ms_a.observed_distances[ms_a.adjacency],
            ms_b.observed_distances[ms_b.adjacency],
        )
        res_a = GridBPLocalizer(config=cfg).localize(ms_a)
        res_b = GridBPLocalizer(config=cfg).localize(ms_b)
        expected = np.column_stack(
            [net.width - res_a.estimates[:, 0], res_a.estimates[:, 1]]
        )
        np.testing.assert_allclose(res_b.estimates, expected, atol=1e-8)

    def test_lateration_translates(self):
        rng = np.random.default_rng(0)
        refs = rng.uniform(size=(5, 2))
        truth = np.array([0.4, 0.6])
        d = np.linalg.norm(refs - truth, axis=1)
        shift = np.array([3.0, -2.0])
        a = lateration(refs, d)
        b = lateration(refs + shift, d)
        np.testing.assert_allclose(b - a, shift, atol=1e-8)

    def test_lateration_scales(self):
        rng = np.random.default_rng(1)
        refs = rng.uniform(size=(4, 2))
        truth = np.array([0.3, 0.3])
        d = np.linalg.norm(refs - truth, axis=1)
        a = lateration(refs, d)
        b = lateration(refs * 2.5, d * 2.5)
        np.testing.assert_allclose(b, a * 2.5, atol=1e-7)


class TestPermutationEquivariance:
    def test_centroid_permutes(self):
        net = small_network(3)
        perm = np.random.default_rng(0).permutation(net.n_nodes)
        permuted = WSNetwork(
            positions=net.positions[perm],
            anchor_mask=net.anchor_mask[perm],
            adjacency=net.adjacency[np.ix_(perm, perm)],
            radio_range=net.radio_range,
        )
        res_a = CentroidLocalizer().localize(observe(net))
        res_b = CentroidLocalizer().localize(observe(permuted))
        np.testing.assert_allclose(
            res_b.estimates, res_a.estimates[perm], atol=1e-12, equal_nan=True
        )

    def test_dvhop_permutes_statistically(self):
        # DV-Hop adopts the hop size of the *nearest* anchor; ties between
        # equally-near anchors break by identity order (as in the real
        # protocol, where whichever beacon arrives first wins), so exact
        # estimates can differ under relabeling.  Coverage and the error
        # distribution must not.
        net = small_network(4)
        perm = np.random.default_rng(1).permutation(net.n_nodes)
        permuted = WSNetwork(
            positions=net.positions[perm],
            anchor_mask=net.anchor_mask[perm],
            adjacency=net.adjacency[np.ix_(perm, perm)],
            radio_range=net.radio_range,
        )
        res_a = DVHopLocalizer().localize(observe(net))
        res_b = DVHopLocalizer().localize(observe(permuted))
        np.testing.assert_array_equal(
            res_b.localized_mask, res_a.localized_mask[perm]
        )
        err_a = res_a.errors(net.positions)
        err_b = res_b.errors(permuted.positions)
        assert abs(np.nanmean(err_a) - np.nanmean(err_b)) < 0.02


class TestMDSInvariances:
    @given(st.floats(0, 2 * np.pi, allow_nan=False), st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_mds_recovers_under_rotation(self, angle, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(size=(10, 2))
        R = np.array(
            [[np.cos(angle), -np.sin(angle)], [np.sin(angle), np.cos(angle)]]
        )
        rotated = pts @ R
        # distances are rotation-invariant, so MDS + Procrustes recovers
        # the original configuration either way
        for config in (pts, rotated):
            rel = classical_mds(pairwise_distances(config))
            Rp, s, t = procrustes_align(rel, config)
            np.testing.assert_allclose(s * rel @ Rp + t, config, atol=1e-6)

    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_mds_embedding_preserves_distances(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(size=(8, 2))
        D = pairwise_distances(pts)
        rel = classical_mds(D)
        np.testing.assert_allclose(pairwise_distances(rel), D, atol=1e-8)


class TestSeedContracts:
    """Determinism laws the whole stack promises."""

    def test_different_measurement_seeds_differ(self):
        net = small_network(6)
        a = observe(net, GaussianRanging(0.05), rng=1)
        b = observe(net, GaussianRanging(0.05), rng=2)
        assert not np.allclose(
            a.observed_distances[a.adjacency], b.observed_distances[b.adjacency]
        )

    def test_grid_bp_is_seed_free(self):
        # the grid solver is fully deterministic given the measurements:
        # rng must not influence it at all
        net = small_network(7)
        ms = observe(net, GaussianRanging(0.02), rng=3)
        cfg = GridBPConfig(grid_size=10, max_iterations=4)
        a = GridBPLocalizer(config=cfg).localize(ms, rng=1)
        b = GridBPLocalizer(config=cfg).localize(ms, rng=999)
        np.testing.assert_array_equal(a.estimates, b.estimates)
