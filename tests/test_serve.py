"""Localization-service suite — the gate for ``repro.serve``.

Covers the robustness envelope end to end:

* cooperative deadline cancellation inside the BP kernels (partial
  posterior, flagged, bit-identical when inactive);
* micro-batch grouping properties — requests with incompatible
  compatibility keys are never co-batched, and a singleton group runs
  the reference backend bit-identically;
* the circuit breaker state machine (injectable clock, no sleeping);
* the in-process fast lane: smoke (two requests, one forced
  deadline-degrade), backpressure shedding, invalid requests, shutdown
  flushing — every admitted request resolves;
* the JSON-lines TCP front end and pipelining client;
* (slow) the warm process pool: SIGKILL mid-batch, crash retry, worker
  replacement — zero lost requests.

Fast lane (module marker ``serve``) runs in the default suite; the
process-pool tests are additionally ``slow``.
"""

import asyncio
import dataclasses as dc
import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GridBPConfig, GridBPLocalizer
from repro.experiments.config import ScenarioConfig, build_scenario
from repro.kernels import Deadline, compatibility_key, deadline_scope
from repro.obs import NULL_TRACER
from repro.serve import (
    CircuitBreaker,
    LocalizationServer,
    LocalizationService,
    LocalizeRequest,
    LocalizeResponse,
    ServeClient,
    ServeConfig,
    execute_batch,
)
from repro.serve.types import request_batch_key, widened_sigma
from repro.serve.workers import BatchExecutionError

pytestmark = pytest.mark.serve

SCEN = ScenarioConfig(n_nodes=18, anchor_ratio=0.25, radio_range=0.42)
CFG = GridBPConfig(grid_size=9, max_iterations=8)


def _scenario(seed):
    network, ms, prior = build_scenario(SCEN, seed=seed)
    return network, ms, prior


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------- #
# cooperative deadline cancellation (kernel layer)
# ---------------------------------------------------------------------- #
class _SteppingClock:
    """Deterministic clock: each read advances a fixed step."""

    def __init__(self, step):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


class TestDeadlineCancellation:
    def test_expired_deadline_stops_after_one_round(self):
        _net, ms, prior = _scenario(3)
        loc = GridBPLocalizer(prior=prior, config=CFG)
        full = loc.localize(ms)
        assert full.n_iterations > 1
        with deadline_scope(seconds=0.0):
            partial = loc.localize(ms)
        # at least one BP round always completes; the stop is flagged
        assert partial.n_iterations == 1
        assert not partial.converged
        assert partial.extras.get("deadline_stop") is True
        assert np.isfinite(partial.estimates[partial.localized_mask]).all()

    def test_fake_clock_stops_mid_schedule(self):
        _net, ms, prior = _scenario(3)
        loc = GridBPLocalizer(prior=prior, config=dc.replace(CFG, tol=1e-12))
        clock = _SteppingClock(step=0.1)
        deadline = Deadline(seconds=0.35, clock=clock)
        with deadline_scope(deadline=deadline):
            partial = loc.localize(ms)
        full = loc.localize(ms)
        assert 1 <= partial.n_iterations < full.n_iterations
        assert partial.extras.get("deadline_stop") is True

    def test_no_scope_is_bit_identical(self):
        _net, ms, prior = _scenario(4)
        loc = GridBPLocalizer(prior=prior, config=CFG)
        before = loc.localize(ms)
        with deadline_scope(seconds=0.0):
            loc.localize(ms)
        after = loc.localize(ms)  # scope fully unwound; nothing leaks
        assert np.array_equal(before.estimates, after.estimates, equal_nan=True)
        assert before.n_iterations == after.n_iterations
        assert "deadline_stop" not in after.extras

    def test_batched_backend_flags_all_trials(self):
        lists = []
        for seed in (5, 6, 7):
            _net, ms, prior = _scenario(seed)
            lists.append((GridBPLocalizer(
                prior=prior, config=dc.replace(CFG, backend="batched")), ms))
        from repro.core.bnloc import localize_batch

        with deadline_scope(seconds=0.0):
            results = localize_batch(lists)
        for r in results:
            assert r.n_iterations == 1
            assert r.extras.get("deadline_stop") is True

    def test_none_scope_is_noop(self):
        from repro.kernels import active_deadline

        with deadline_scope(seconds=None):
            assert active_deadline() is None


# ---------------------------------------------------------------------- #
# request/response types
# ---------------------------------------------------------------------- #
class TestTypes:
    def test_exactly_one_problem_form(self):
        _net, ms, _prior = _scenario(1)
        with pytest.raises(ValueError, match="exactly one"):
            LocalizeRequest()
        with pytest.raises(ValueError, match="exactly one"):
            LocalizeRequest(measurements=ms, scenario=SCEN)

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError, match="deadline_s"):
            LocalizeRequest(scenario=SCEN, deadline_s=0.0)

    def test_backend_is_normalized_at_admission(self):
        req = LocalizeRequest(
            scenario=SCEN, config=dc.replace(CFG, backend="batched")
        )
        assert req.config.backend == "reference"

    def test_response_status_validated(self):
        with pytest.raises(ValueError, match="unknown status"):
            LocalizeResponse(request_id="x", status="maybe")

    def test_widened_sigma_is_uniform_rms(self):
        assert widened_sigma(1.0, 1.0) == pytest.approx(np.sqrt(2.0 / 12.0))

    def test_to_dict_is_json_safe(self):
        import json

        resp = LocalizeResponse(
            request_id="r",
            status="ok",
            estimates=np.array([[0.1, 0.2], [np.nan, np.nan]]),
            localized_mask=np.array([True, False]),
            fallback_mask=np.array([False, False]),
            uncertainty=np.array([0.05, np.nan]),
        )
        wire = json.loads(json.dumps(resp.to_dict()))
        assert wire["estimates"][1] == [None, None]
        assert wire["uncertainty"] == [0.05, None]


# ---------------------------------------------------------------------- #
# micro-batch grouping properties
# ---------------------------------------------------------------------- #
class TestGroupingProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        g1=st.integers(6, 10),
        g2=st.integers(6, 10),
        it1=st.integers(3, 8),
        it2=st.integers(3, 8),
    )
    def test_batch_key_matches_kernel_compatibility(self, g1, g2, it1, it2):
        """Equal request keys ⇔ equal prepared-problem compatibility keys —
        so the service can group *before* preparing, and incompatible
        shapes are never co-batched."""
        _net, ms, prior = _scenario(2)
        reqs, keys = [], []
        for g, it in ((g1, it1), (g2, it2)):
            cfg = GridBPConfig(grid_size=g, max_iterations=it)
            req = LocalizeRequest(measurements=ms, prior=prior, config=cfg)
            reqs.append(req)
            keys.append(request_batch_key(req))
            prob = (
                GridBPLocalizer(prior=prior, config=req.config)
                ._prepare(ms, NULL_TRACER)
                .problem
            )
            assert request_batch_key(req) == compatibility_key(prob)
        assert (keys[0] == keys[1]) == (
            (g1, it1) == (g2, it2)
        )

    def test_incompatible_requests_run_in_separate_batches(self):
        async def main():
            svc = LocalizationService(
                ServeConfig(n_workers=0, max_batch=8, batch_window_s=0.02)
            )
            await svc.start()
            try:
                reqs = []
                for i in range(6):
                    cfg = dc.replace(CFG, grid_size=8 + (i % 2))
                    reqs.append(
                        LocalizeRequest(scenario=SCEN, seed=i, config=cfg)
                    )
                return await asyncio.gather(*[svc.submit(r) for r in reqs])
            finally:
                await svc.stop()

        resps = run(main())
        assert all(r.status == "ok" for r in resps)
        # two shapes, three requests each: no batch may exceed 3
        assert all(r.batch_size <= 3 for r in resps)
        assert any(r.batch_size == 3 for r in resps)

    def test_singleton_group_matches_reference_backend_bitwise(self):
        _net, ms, prior = _scenario(8)
        ref = GridBPLocalizer(
            prior=prior, config=dc.replace(CFG, backend="reference")
        ).localize(ms)
        payload = execute_batch(
            [{"measurements": ms, "prior": prior, "config": CFG}]
        )[0]
        assert payload["ok"]
        assert np.array_equal(
            payload["estimates"], ref.estimates, equal_nan=True
        )
        assert payload["n_iterations"] == ref.n_iterations
        assert payload["converged"] == ref.converged

    def test_multi_item_batch_matches_sequential_reference(self):
        items, refs = [], []
        for seed in (11, 12, 13):
            _net, ms, prior = _scenario(seed)
            items.append({"measurements": ms, "prior": prior, "config": CFG})
            refs.append(GridBPLocalizer(prior=prior, config=CFG).localize(ms))
        payloads = execute_batch(items)
        for payload, ref in zip(payloads, refs):
            assert np.array_equal(
                payload["estimates"], ref.estimates, equal_nan=True
            )
            assert payload["n_iterations"] == ref.n_iterations


# ---------------------------------------------------------------------- #
# circuit breaker
# ---------------------------------------------------------------------- #
class _ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestCircuitBreaker:
    def test_trips_after_threshold_and_recovers(self):
        clock = _ManualClock()
        br = CircuitBreaker(threshold=3, cooldown_s=5.0, clock=clock)
        assert br.allow()
        br.record_failure()
        br.record_failure()
        assert br.allow()  # still closed below threshold
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()
        clock.t = 4.9
        assert not br.allow()  # cooldown not elapsed
        clock.t = 5.0
        assert br.allow()  # half-open probe
        assert not br.allow()  # only one probe at a time
        br.record_success()
        assert br.state == "closed"
        assert br.allow()
        assert br.trips == 1

    def test_half_open_failure_reopens(self):
        clock = _ManualClock()
        br = CircuitBreaker(threshold=2, cooldown_s=1.0, clock=clock)
        br.record_failure()
        br.record_failure()
        clock.t = 1.0
        assert br.allow()
        br.record_failure()  # probe failed -> straight back to open
        assert br.state == "open"
        assert not br.allow()
        assert br.trips == 2

    def test_success_resets_failure_streak(self):
        br = CircuitBreaker(threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"


# ---------------------------------------------------------------------- #
# the in-process fast lane
# ---------------------------------------------------------------------- #
def _inline_service(**kw):
    defaults = dict(n_workers=0, max_batch=4, batch_window_s=0.005)
    defaults.update(kw)
    return LocalizationService(ServeConfig(**defaults))


class TestServiceFastLane:
    def test_smoke_two_requests_one_deadline_degrade(self):
        """The required smoke: two requests through an in-process server,
        one with a budget that forces the degraded path."""

        async def main():
            svc = _inline_service(batch_window_s=0.02)
            await svc.start()
            try:
                ok_fut = svc.submit(
                    LocalizeRequest(
                        scenario=SCEN, seed=1, config=CFG, request_id="ok"
                    )
                )
                # a budget far below the batch window forces expiry
                dl_fut = svc.submit(
                    LocalizeRequest(
                        scenario=SCEN, seed=2, config=CFG,
                        deadline_s=1e-6, request_id="deadline",
                    )
                )
                return await asyncio.gather(ok_fut, dl_fut), svc
            finally:
                await svc.stop()

        (ok, degraded), svc = run(main())
        assert ok.status == "ok"
        assert ok.answered and ok.mean_error is not None
        assert degraded.status == "degraded"
        assert degraded.reason == "deadline-expired"
        assert degraded.answered  # fallback estimates, not silence
        assert degraded.fallback_mask.sum() > 0
        wide = widened_sigma(1.0, 1.0)
        assert np.all(
            degraded.uncertainty[degraded.fallback_mask] == wide
        )
        counters = svc.metrics_snapshot()["counters"]
        assert counters["ok"] == 1
        assert counters["degraded"] == 1
        assert counters["expired"] == 1

    def test_backpressure_sheds_with_retry_hint(self):
        async def main():
            svc = _inline_service(queue_limit=2, batch_window_s=0.05)
            await svc.start()
            try:
                futs = [
                    svc.submit(
                        LocalizeRequest(
                            scenario=SCEN, seed=s, config=CFG,
                            request_id=f"r{s}",
                        )
                    )
                    for s in range(6)
                ]
                return await asyncio.gather(*futs)
            finally:
                await svc.stop()

        resps = run(main())
        statuses = [r.status for r in resps]
        assert statuses.count("shed") == 4  # beyond the 2-deep queue
        for r in resps:
            if r.status == "shed":
                assert r.reason == "queue-full"
                assert r.retry_after > 0
            else:
                assert r.status == "ok"

    def test_invalid_request_is_an_error_not_a_loss(self):
        async def main():
            svc = _inline_service()
            await svc.start()
            try:
                bad_scen = ScenarioConfig(n_nodes=5, anchor_ratio=0.99)
                return await svc.localize(
                    LocalizeRequest(scenario=bad_scen, config=CFG)
                )
            finally:
                await svc.stop()

        resp = run(main())
        assert resp.status == "error"
        assert resp.reason == "invalid-request"
        assert resp.error

    def test_shutdown_flushes_queued_requests(self):
        async def main():
            svc = _inline_service(batch_window_s=5.0)  # never fires
            await svc.start()
            fut = svc.submit(
                LocalizeRequest(scenario=SCEN, seed=1, config=CFG)
            )
            await svc.stop()
            return await fut

        resp = run(main())
        assert resp.status == "shed"
        assert resp.reason == "shutdown"

    def test_submit_after_stop_is_shed(self):
        async def main():
            svc = _inline_service()
            await svc.start()
            await svc.stop()
            return await svc.submit(
                LocalizeRequest(scenario=SCEN, seed=1, config=CFG)
            )

        assert run(main()).status == "shed"

    def test_execution_error_degrades_and_trips_breaker(self):
        async def main():
            svc = _inline_service(
                breaker_threshold=2, breaker_cooldown_s=60.0
            )
            await svc.start()

            async def boom(items, deadline_s, timeout):
                raise BatchExecutionError("kernel exploded")

            svc.pool.run_batch = boom
            try:
                r1 = await svc.localize(
                    LocalizeRequest(scenario=SCEN, seed=1, config=CFG)
                )
                r2 = await svc.localize(
                    LocalizeRequest(scenario=SCEN, seed=2, config=CFG)
                )
                r3 = await svc.localize(
                    LocalizeRequest(scenario=SCEN, seed=3, config=CFG)
                )
                return r1, r2, r3, svc
            finally:
                await svc.stop()

        r1, r2, r3, svc = run(main())
        assert r1.status == "degraded" and r1.reason == "execution-error"
        assert r2.status == "degraded" and r2.reason == "execution-error"
        # third request hits the now-open breaker without executing
        assert r3.status == "degraded" and r3.reason == "breaker-open"
        assert r1.answered and r2.answered and r3.answered
        assert svc.breakers.snapshot()["trips"] == 1

    def test_degraded_fallback_carries_honest_uncertainty(self):
        async def main():
            svc = _inline_service()
            await svc.start()

            async def boom(items, deadline_s, timeout):
                raise BatchExecutionError("down")

            svc.pool.run_batch = boom
            try:
                return await svc.localize(
                    LocalizeRequest(scenario=SCEN, seed=4, config=CFG)
                )
            finally:
                await svc.stop()

        resp = run(main())
        assert resp.degraded
        assert np.isfinite(resp.estimates).all()
        assert resp.localized_mask.all()
        unknown = resp.fallback_mask
        assert unknown.any()
        assert (resp.uncertainty[unknown] == widened_sigma(1.0, 1.0)).all()
        assert (resp.uncertainty[~unknown] == 0.0).all()
        assert resp.mean_error is not None  # scenario form knows the truth


# ---------------------------------------------------------------------- #
# JSON-lines TCP front end
# ---------------------------------------------------------------------- #
class TestServer:
    def test_tcp_roundtrip_and_ops(self):
        async def main():
            server = LocalizationServer(_inline_service())
            host, port = await server.start()
            client = await ServeClient(host, port).connect()
            try:
                assert await client.ready() is True
                health = await client.health()
                assert health["status"] == "ok"
                resp = await client.localize(
                    scenario={
                        "n_nodes": 18,
                        "anchor_ratio": 0.25,
                        "radio_range": 0.42,
                    },
                    seed=1,
                    config={"grid_size": 9, "max_iterations": 8},
                )
                metrics = await client.metrics()
                bad = await client.localize(config={"grid_size": 9})
                unknown_cfg = await client.localize(
                    scenario={"n_nodes": 18}, config={"nonsense": 1}
                )
                return resp, metrics, bad, unknown_cfg
            finally:
                await client.close()
                await server.stop()

        resp, metrics, bad, unknown_cfg = run(main())
        assert resp["status"] == "ok"
        assert resp["n_iterations"] >= 1
        assert resp["mean_error"] is not None
        assert metrics["counters"]["ok"] == 1
        assert bad["status"] == "error"
        assert unknown_cfg["status"] == "error"
        assert "nonsense" in unknown_cfg["error"]

    def test_measurement_form_roundtrip(self):
        from repro.io import measurements_to_dict

        _net, ms, _prior = _scenario(5)
        ref = GridBPLocalizer(config=CFG).localize(ms)

        async def main():
            server = LocalizationServer(_inline_service())
            host, port = await server.start()
            client = await ServeClient(host, port).connect()
            try:
                return await client.localize(
                    measurements=measurements_to_dict(ms),
                    config={"grid_size": 9, "max_iterations": 8},
                )
            finally:
                await client.close()
                await server.stop()

        resp = run(main())
        assert resp["status"] == "ok"
        est = np.array(
            [
                [np.nan if v is None else v for v in row]
                for row in resp["estimates"]
            ]
        )
        mask = np.array(resp["localized_mask"], dtype=bool)
        assert np.array_equal(est[mask], ref.estimates[mask])

    def test_malformed_line_gets_error_reply(self):
        async def main():
            server = LocalizationServer(_inline_service())
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                await writer.drain()
                import json

                reply = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return reply
            finally:
                await server.stop()

        reply = run(main())
        assert reply["status"] == "error"

    def test_pipelined_requests_on_one_connection(self):
        async def main():
            server = LocalizationServer(
                _inline_service(max_batch=4, batch_window_s=0.02)
            )
            host, port = await server.start()
            client = await ServeClient(host, port).connect()
            try:
                scen_wire = {
                    "n_nodes": 18,
                    "anchor_ratio": 0.25,
                    "radio_range": 0.42,
                }
                cfg_wire = {"grid_size": 9, "max_iterations": 8}
                return await asyncio.gather(
                    *[
                        client.localize(
                            scenario=scen_wire, seed=s, config=cfg_wire
                        )
                        for s in range(4)
                    ]
                )
            finally:
                await client.close()
                await server.stop()

        resps = run(main())
        assert [r["status"] for r in resps] == ["ok"] * 4
        assert {r["batch_size"] for r in resps} == {4}  # co-batched


# ---------------------------------------------------------------------- #
# warm process pool (slow lane)
# ---------------------------------------------------------------------- #
@pytest.mark.slow
class TestProcessPool:
    def test_sigkill_mid_batch_retries_and_replaces(self):
        async def main():
            svc = LocalizationService(
                ServeConfig(
                    n_workers=1,
                    max_batch=4,
                    batch_window_s=0.01,
                    probe_interval_s=0.1,
                )
            )
            await svc.start()
            try:
                futs = [
                    svc.submit(
                        LocalizeRequest(
                            scenario=SCEN, seed=s, config=CFG,
                            request_id=f"k{s}",
                        )
                    )
                    for s in range(4)
                ]
                await asyncio.sleep(0.03)  # let the batch reach the worker
                victim = next(iter(svc.pool._workers.values()))
                os.kill(victim.pid, signal.SIGKILL)
                resps = await asyncio.gather(*futs)
                for _ in range(100):  # wait out replacement
                    if svc.pool.snapshot()["alive"] == 1:
                        break
                    await asyncio.sleep(0.05)
                after = await svc.localize(
                    LocalizeRequest(scenario=SCEN, seed=9, config=CFG)
                )
                return resps, after, svc.pool.replacements
            finally:
                await svc.stop()

        resps, after, replacements = run(main())
        # zero lost: every admitted request answered, full or degraded
        assert all(r.answered for r in resps)
        assert replacements >= 1
        assert after.status == "ok"

    def test_probe_replaces_idle_dead_worker(self):
        async def main():
            svc = LocalizationService(
                ServeConfig(n_workers=1, probe_interval_s=0.05)
            )
            await svc.start()
            try:
                victim = next(iter(svc.pool._workers.values()))
                os.kill(victim.pid, signal.SIGKILL)
                for _ in range(200):
                    await asyncio.sleep(0.05)
                    snap = svc.pool.snapshot()
                    if snap["replacements"] >= 1 and snap["alive"] >= 1:
                        break
                resp = await svc.localize(
                    LocalizeRequest(scenario=SCEN, seed=2, config=CFG)
                )
                return resp, svc.pool.snapshot()
            finally:
                await svc.stop()

        resp, snap = run(main())
        assert snap["replacements"] >= 1
        assert resp.status == "ok"

    def test_worker_batch_matches_inline_bitwise(self):
        _net, ms, prior = _scenario(21)
        ref = GridBPLocalizer(prior=prior, config=CFG).localize(ms)

        async def main():
            svc = LocalizationService(ServeConfig(n_workers=1))
            await svc.start()
            try:
                return await svc.localize(
                    LocalizeRequest(
                        measurements=ms, prior=prior, config=CFG
                    )
                )
            finally:
                await svc.stop()

        resp = run(main())
        assert resp.status == "ok"
        assert np.array_equal(resp.estimates, ref.estimates, equal_nan=True)
        assert resp.n_iterations == ref.n_iterations
