"""Tests for the durable checkpoint/resume runtime (repro.ckpt).

Covers the write-ahead ledger framing and its corruption tolerance
(torn tail, bad CRC mid-file, unknown schema, empty/missing file), the
bit-exact payload codec, the :class:`~repro.ckpt.Checkpoint` runtime
(header pinning, abort hook, counters), and the resume guarantee of
every checkpointed entry point: an interrupted-then-resumed run is
bit-identical to one that never died.  The crash-recovery classes kill
real subprocesses (``SIGKILL`` mid-sweep, ``SIGTERM`` for the polite
path) and resume their ledgers in-process.
"""

import dataclasses
import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.ckpt import (
    LEDGER_SCHEMA_VERSION,
    Checkpoint,
    CheckpointAbort,
    CheckpointMismatch,
    LedgerError,
    LedgerWriter,
    decode_value,
    encode_value,
    format_progress,
    ledger_progress,
    read_ledger,
    resolve_checkpoint,
    seed_fingerprint,
    trap_signals,
)
from repro.ckpt.ledger import frame_record, parse_line
from repro.experiments import ScenarioConfig
from repro.experiments.runner import (
    evaluate_methods,
    evaluate_methods_parallel,
    run_sweep,
    standard_methods,
)
from repro.metrics.error import ErrorSummary
from repro.obs import Tracer
from repro.parallel import run_trials_resilient

pytestmark = pytest.mark.ckpt

_SRC = Path(__file__).resolve().parents[1] / "src"


# ---------------------------------------------------------------------- #
# ledger framing and recovery (satellite: corruption coverage)
# ---------------------------------------------------------------------- #
def _write_ledger(path, n_trials=3):
    """A well-formed ledger: header + *n_trials* trial records."""
    with LedgerWriter(path) as w:
        w.append(
            {
                "kind": "header",
                "schema": LEDGER_SCHEMA_VERSION,
                "meta": {"kind": "trials", "total_cells": n_trials},
            }
        )
        for i in range(n_trials):
            w.append({"kind": "trial", "key": f"trial:{i}", "payload": {"v": i}})


class TestLedgerFraming:
    def test_frame_parse_round_trip(self):
        body = {"kind": "trial", "key": "trial:0", "payload": {"x": 1.5}}
        line = frame_record(body)
        assert line.endswith("\n")
        assert parse_line(line[:-1]) == body

    def test_parse_rejects_damage(self):
        line = frame_record({"kind": "trial", "key": "k", "payload": {}})[:-1]
        head, payload = line.split(" ", 1)
        assert parse_line(payload) is None  # no CRC head
        assert parse_line("zzzzzzzz " + payload) is None  # non-hex CRC
        assert parse_line(head + " " + payload[:-2]) is None  # torn payload
        flipped = head + " " + payload.replace("trial", "Trial", 1)
        assert parse_line(flipped) is None  # CRC mismatch
        assert parse_line(frame_record({})[:-1]) == {}

    def test_writer_refuses_after_close(self, tmp_path):
        w = LedgerWriter(tmp_path / "l.jsonl")
        w.close()
        assert w.closed
        with pytest.raises(ValueError, match="closed"):
            w.append({"kind": "trial"})


class TestLedgerRecovery:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "l.jsonl"
        _write_ledger(path)
        contents = read_ledger(path)
        assert contents.header is not None
        assert contents.meta == {"kind": "trials", "total_cells": 3}
        assert contents.n_records == 3
        assert contents.n_corrupt == 0
        assert not contents.truncated_tail
        assert contents.records["trial:1"] == {"v": 1}

    def test_missing_and_empty_are_fresh(self, tmp_path):
        missing = read_ledger(tmp_path / "nope.jsonl")
        assert missing.header is None and missing.records == {}
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        contents = read_ledger(empty)
        assert contents.header is None and contents.n_records == 0

    def test_truncated_tail_dropped_with_warning(self, tmp_path):
        path = tmp_path / "l.jsonl"
        _write_ledger(path)
        # simulate a crash mid-append: a torn, newline-less final record
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(frame_record({"kind": "trial", "key": "trial:3"})[:17])
        with pytest.warns(RuntimeWarning, match="torn final record"):
            contents = read_ledger(path)
        assert contents.truncated_tail
        assert contents.n_records == 3  # intact prefix fully preserved
        assert "trial:3" not in contents.records

    def test_bad_crc_mid_file_quarantined(self, tmp_path):
        path = tmp_path / "l.jsonl"
        _write_ledger(path)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:12] + "x" + lines[2][13:]  # flip a payload byte
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="quarantining corrupt record"):
            contents = read_ledger(path)
        assert contents.n_corrupt == 1
        assert contents.n_records == 2
        assert "trial:1" not in contents.records  # the damaged one re-runs
        assert contents.records["trial:0"] == {"v": 0}
        assert contents.records["trial:2"] == {"v": 2}

    def test_unknown_schema_raises(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with LedgerWriter(path) as w:
            w.append({"kind": "header", "schema": 99, "meta": {}})
        with pytest.raises(LedgerError, match="unknown schema version 99"):
            read_ledger(path)

    def test_trial_before_header_raises(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with LedgerWriter(path) as w:
            w.append({"kind": "trial", "key": "trial:0", "payload": {}})
        with pytest.raises(LedgerError, match="precedes\n?.*header"):
            read_ledger(path)

    def test_keyless_trial_quarantined(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with LedgerWriter(path) as w:
            w.append({"kind": "header", "schema": LEDGER_SCHEMA_VERSION, "meta": {}})
            w.append({"kind": "trial", "payload": {"v": 0}})
        with pytest.warns(RuntimeWarning, match="keyless"):
            contents = read_ledger(path)
        assert contents.n_corrupt == 1 and contents.n_records == 0

    def test_duplicate_key_last_record_wins(self, tmp_path):
        path = tmp_path / "l.jsonl"
        _write_ledger(path, n_trials=1)
        with LedgerWriter(path) as w:
            w.append({"kind": "trial", "key": "trial:0", "payload": {"v": 9}})
        contents = read_ledger(path)
        assert contents.records["trial:0"] == {"v": 9}


# ---------------------------------------------------------------------- #
# bit-exact payload codec
# ---------------------------------------------------------------------- #
class TestSnapshotCodec:
    def _round_trip(self, value):
        import json

        encoded = encode_value(value)
        # must survive the actual transport: canonical JSON text
        return decode_value(json.loads(json.dumps(encoded)))

    def test_scalars(self):
        for v in (None, True, 3, -7, 0.1, float("inf"), "s"):
            assert self._round_trip(v) == v or (v != v and self._round_trip(v) != v)
        nan = self._round_trip(float("nan"))
        assert isinstance(nan, float) and nan != nan

    def test_float_bits_exact(self):
        import struct

        for v in (0.1, 1e-308, np.nextafter(1.0, 2.0)):
            assert struct.pack("<d", self._round_trip(v)) == struct.pack("<d", v)

    def test_numpy_scalar_keeps_dtype(self):
        out = self._round_trip(np.float32(0.25))
        assert out.dtype == np.float32 and out == np.float32(0.25)
        assert self._round_trip(np.int64(-5)).dtype == np.int64

    def test_ndarray_byte_exact(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=(3, 4))
        arr[0, 0] = np.nan
        out = self._round_trip(arr)
        assert out.dtype == arr.dtype and out.shape == arr.shape
        assert out.tobytes() == arr.tobytes()  # NaN payloads included

    def test_ndarray_int_and_noncontiguous(self):
        arr = np.arange(12, dtype=np.int32).reshape(3, 4)[:, ::2]
        out = self._round_trip(arr)
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == np.int32

    def test_containers(self):
        value = {"a": (1, 2.5), "b": [{"c": None}], "d": {3: "x", (1, 2): "y"}}
        assert self._round_trip(value) == value

    def test_error_summary(self):
        s = ErrorSummary(**{
            f.name: float(i) for i, f in enumerate(dataclasses.fields(ErrorSummary))
        })
        out = self._round_trip(s)
        assert isinstance(out, ErrorSummary) and out == s

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="cannot checkpoint"):
            encode_value(object())

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError, match="unknown checkpoint payload tag"):
            decode_value({"__repro__": "mystery"})


# ---------------------------------------------------------------------- #
# checkpoint runtime
# ---------------------------------------------------------------------- #
class TestCheckpoint:
    _META = {"kind": "trials", "n_trials": 2, "seed": {"type": "int", "value": 7}}

    def test_fresh_open_record_replay(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with Checkpoint(path).open(self._META) as ck:
            assert ck.get("trial:0") is None
            ck.record("trial:0", {"result": 1})
            assert ck.n_recorded == 1
        with Checkpoint(path).open(self._META) as ck:
            assert ck.get("trial:0") == {"result": 1}
            assert ck.n_replayed == 1 and ck.n_recorded == 0

    def test_meta_mismatch_rejected(self, tmp_path):
        path = tmp_path / "l.jsonl"
        Checkpoint(path).open(self._META).close()
        with pytest.raises(CheckpointMismatch, match="different run"):
            Checkpoint(path).open({**self._META, "n_trials": 5})
        # non-core extras may differ freely
        Checkpoint(path).open({**self._META, "note": "extra"}).close()

    def test_abort_hook_leaves_durable_records(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ck = Checkpoint(path, abort_after=2).open(self._META)
        try:
            ck.record("trial:0", {"r": 0})
            with pytest.raises(CheckpointAbort):
                ck.record("trial:1", {"r": 1})
        finally:
            ck.close()
        contents = read_ledger(path)
        assert contents.n_records == 2  # both appended before the "crash"

    def test_record_after_close_raises(self, tmp_path):
        ck = Checkpoint(tmp_path / "l.jsonl").open(self._META)
        ck.close()
        with pytest.raises(ValueError, match="not open"):
            ck.record("trial:0", {})

    def test_scoped_keys(self, tmp_path):
        ck = Checkpoint(tmp_path / "l.jsonl").open(self._META)
        ck.scoped("pt1").record("trial:0", {"r": 1})
        assert ck.get("pt1:trial:0") == {"r": 1}
        assert ck.scoped("pt0").get("trial:0") is None
        ck.close()

    def test_emit_counters(self, tmp_path):
        path = tmp_path / "l.jsonl"
        _write_ledger(path, n_trials=1)
        with open(path, "a") as fh:
            fh.write("torn")
        tracer = Tracer()
        with pytest.warns(RuntimeWarning):
            ck = Checkpoint(path).open({"kind": "trials", "total_cells": 1})
        ck.get("trial:0")
        ck.record("trial:1", {})
        ck.close()
        ck.emit_counters(tracer)
        counters = tracer.snapshot(include_timings=False)["counters"]
        assert counters["ckpt_trials_replayed"] == 1
        assert counters["ckpt_trials_recorded"] == 1
        assert counters["ckpt_truncated_tail"] == 1

    def test_resolve_checkpoint_ownership(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ck, owned = resolve_checkpoint(str(path), lambda: self._META)
        assert owned and ck.opened
        ck.close()
        mine = Checkpoint(path)
        ck2, owned2 = resolve_checkpoint(mine, lambda: self._META)
        assert ck2 is mine and not owned2
        scope = mine.scoped("pt0")
        assert resolve_checkpoint(scope, lambda: self._META) == (scope, False)
        mine.close()
        with pytest.raises(TypeError, match="checkpoint must be"):
            resolve_checkpoint(42, lambda: self._META)


class TestSeedFingerprint:
    def test_int_and_seedseq(self):
        assert seed_fingerprint(7) == {"type": "int", "value": 7}
        assert seed_fingerprint(np.int64(7)) == {"type": "int", "value": 7}
        ss = np.random.SeedSequence(11)
        fp = seed_fingerprint(ss)
        assert fp["type"] == "seedseq" and fp["entropy"] == 11
        ss.spawn(3)
        assert seed_fingerprint(ss)["children_spawned"] == 3

    def test_irreproducible_seeds_rejected(self):
        with pytest.raises(ValueError, match="reproducible master seed"):
            seed_fingerprint(None)  # OS entropy
        with pytest.raises(ValueError, match="reproducible master seed"):
            seed_fingerprint(np.random.default_rng(0))  # consumed state


class TestTrapSignals:
    def test_sigterm_becomes_keyboard_interrupt(self):
        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt, match="terminated by signal"):
            with trap_signals():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5)  # the handler fires before this elapses
                pytest.fail("signal was not delivered")
        assert signal.getsignal(signal.SIGTERM) is before  # restored

    def test_restores_on_normal_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with trap_signals():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_restores_on_exception_mid_scope(self):
        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(RuntimeError, match="boom"):
            with trap_signals():
                raise RuntimeError("boom")
        assert signal.getsignal(signal.SIGTERM) is before

    def test_nested_scopes_restore_outer_handler(self):
        # Regression: the restore loop once passed ``signal.signal``'s
        # return value straight back, which leaked handlers whenever it
        # was None (non-Python handler) — and nesting amplified the leak.
        before = signal.getsignal(signal.SIGTERM)
        with trap_signals():
            outer = signal.getsignal(signal.SIGTERM)
            with trap_signals():
                inner = signal.getsignal(signal.SIGTERM)
                assert inner is not before
            # inner scope restores the *outer* scope's trap
            assert signal.getsignal(signal.SIGTERM) is outer
        assert signal.getsignal(signal.SIGTERM) is before

    def test_restores_multiple_signals_after_partial_use(self):
        sigs = (signal.SIGTERM, signal.SIGUSR1)
        before = {s: signal.getsignal(s) for s in sigs}
        with pytest.raises(KeyboardInterrupt):
            with trap_signals(extra=sigs):
                os.kill(os.getpid(), signal.SIGUSR1)
                time.sleep(5)
                pytest.fail("signal was not delivered")
        for s in sigs:
            assert signal.getsignal(s) is before[s]

    def test_none_previous_handler_falls_back_to_default(self, monkeypatch):
        # Simulate a handler installed by non-Python code: getsignal
        # returns None.  Restoration must not raise and must leave the
        # default disposition, not the raising trap.
        real_getsignal = signal.getsignal
        monkeypatch.setattr(
            signal,
            "getsignal",
            lambda s: None if s == signal.SIGUSR1 else real_getsignal(s),
        )
        with trap_signals(extra=(signal.SIGUSR1,)):
            pass
        monkeypatch.undo()
        assert signal.getsignal(signal.SIGUSR1) == signal.SIG_DFL
        signal.signal(signal.SIGUSR1, signal.SIG_DFL)


# ---------------------------------------------------------------------- #
# resume bit-identity: run_trials_resilient
# ---------------------------------------------------------------------- #
def _vec_trial(seed: int) -> np.ndarray:
    """Picklable trial whose result exercises the ndarray codec."""
    return np.random.default_rng(seed).normal(size=4)


def _assert_batches_equal(a, b):
    assert len(a.results) == len(b.results)
    for x, y in zip(a.results, b.results):
        assert x.dtype == y.dtype and x.tobytes() == y.tobytes()
    assert a.failures == b.failures


class TestResumeTrials:
    def test_serial_interrupt_resume_bit_identical(self, tmp_path):
        reference = run_trials_resilient(_vec_trial, 4, seed=5)
        path = tmp_path / "trials.jsonl"
        with pytest.raises(CheckpointAbort):
            run_trials_resilient(
                _vec_trial, 4, seed=5, checkpoint=Checkpoint(path, abort_after=2)
            )
        assert read_ledger(path).n_records == 2
        resumed = run_trials_resilient(_vec_trial, 4, seed=5, checkpoint=str(path))
        _assert_batches_equal(resumed, reference)

    def test_full_ledger_resume_is_noop(self, tmp_path):
        path = tmp_path / "trials.jsonl"
        run_trials_resilient(_vec_trial, 3, seed=5, checkpoint=str(path))
        calls = []

        def counting(seed):
            calls.append(seed)
            return _vec_trial(seed)

        ck = Checkpoint(path)
        resumed = run_trials_resilient(counting, 3, seed=5, checkpoint=ck)
        assert calls == []  # zero trials re-ran
        assert ck.n_recorded == 0 and ck.n_replayed == 3
        _assert_batches_equal(
            resumed, run_trials_resilient(_vec_trial, 3, seed=5)
        )
        ck.close()

    def test_trial_error_mid_batch_keeps_ledger_resumable(self, tmp_path):
        path = tmp_path / "trials.jsonl"
        boom = []

        def flaky(seed):
            if not boom:
                boom.append(seed)
                raise KeyboardInterrupt("operator ^C")
            return _vec_trial(seed)

        with pytest.raises(KeyboardInterrupt):
            run_trials_resilient(flaky, 3, seed=5, checkpoint=str(path))
        # whatever completed before the interrupt is durable and resumable
        resumed = run_trials_resilient(_vec_trial, 3, seed=5, checkpoint=str(path))
        _assert_batches_equal(resumed, run_trials_resilient(_vec_trial, 3, seed=5))

    def test_checkpoint_rejects_entropy_seed(self, tmp_path):
        with pytest.raises(ValueError, match="reproducible master seed"):
            run_trials_resilient(
                _vec_trial, 2, seed=None, checkpoint=str(tmp_path / "l.jsonl")
            )

    def test_tracer_counters(self, tmp_path):
        path = tmp_path / "trials.jsonl"
        with pytest.raises(CheckpointAbort):
            run_trials_resilient(
                _vec_trial, 3, seed=5, checkpoint=Checkpoint(path, abort_after=1)
            )
        tracer = Tracer()
        run_trials_resilient(_vec_trial, 3, seed=5, checkpoint=str(path), tracer=tracer)
        counters = tracer.snapshot(include_timings=False)["counters"]
        assert counters["ckpt_trials_replayed"] == 1
        assert counters["ckpt_trials_recorded"] == 2

    @pytest.mark.slow
    def test_process_mode_interrupt_resume_bit_identical(self, tmp_path):
        reference = run_trials_resilient(_vec_trial, 4, seed=5, n_workers=2)
        path = tmp_path / "trials.jsonl"
        with pytest.raises(CheckpointAbort):
            run_trials_resilient(
                _vec_trial,
                4,
                seed=5,
                n_workers=2,
                checkpoint=Checkpoint(path, abort_after=2),
            )
        resumed = run_trials_resilient(
            _vec_trial, 4, seed=5, n_workers=2, checkpoint=str(path)
        )
        _assert_batches_equal(resumed, reference)
        # and the process ledger replays into the serial runner identically
        serial = run_trials_resilient(_vec_trial, 4, seed=5, checkpoint=str(path))
        _assert_batches_equal(serial, reference)


# ---------------------------------------------------------------------- #
# resume bit-identity: evaluate_methods / evaluate_methods_parallel / sweep
# ---------------------------------------------------------------------- #
_CFG = ScenarioConfig(n_nodes=16, anchor_ratio=0.25, radio_range=0.45)
_METHOD_KW = dict(grid_size=8, max_iterations=4, include=["bn-pk", "centroid"])


def _methods():
    return standard_methods(**_METHOD_KW)


def _flatten(evaluation):
    """Deterministic view of an evaluation: summaries and message counts
    in sorted method order; wall-clock runtimes excluded by design."""
    rows = {}
    for name in sorted(evaluation):
        mr = evaluation[name]
        rows[name] = [
            [float(v) for v in dataclasses.astuple(s)] for s in mr.summaries
        ] + [[float(m) for m in mr.messages]]
    return rows


class TestResumeEvaluate:
    def test_interrupt_resume_bit_identical(self, tmp_path):
        reference = evaluate_methods(_CFG, _methods(), 2, seed=3)
        path = tmp_path / "eval.jsonl"
        with pytest.raises(CheckpointAbort):
            evaluate_methods(
                _CFG, _methods(), 2, seed=3, checkpoint=Checkpoint(path, abort_after=1)
            )
        resumed = evaluate_methods(_CFG, _methods(), 2, seed=3, checkpoint=str(path))
        assert _flatten(resumed) == _flatten(reference)

    def test_finished_ledger_resume_is_noop(self, tmp_path):
        path = tmp_path / "eval.jsonl"
        evaluate_methods(_CFG, _methods(), 2, seed=3, checkpoint=str(path))
        ck = Checkpoint(path)
        again = evaluate_methods(_CFG, _methods(), 2, seed=3, checkpoint=ck)
        assert ck.n_recorded == 0 and ck.n_replayed == 2
        assert read_ledger(path).n_records == 2  # nothing re-appended
        assert _flatten(again) == _flatten(evaluate_methods(_CFG, _methods(), 2, seed=3))
        ck.close()

    def test_resume_with_different_args_rejected(self, tmp_path):
        path = tmp_path / "eval.jsonl"
        evaluate_methods(_CFG, _methods(), 2, seed=3, checkpoint=str(path))
        with pytest.raises(CheckpointMismatch):
            evaluate_methods(_CFG, _methods(), 3, seed=3, checkpoint=str(path))
        with pytest.raises(CheckpointMismatch):
            evaluate_methods(
                _CFG.replace(noise_ratio=0.3), _methods(), 2, seed=3, checkpoint=str(path)
            )

    def test_serial_and_parallel_ledgers_are_distinct_kinds(self, tmp_path):
        # the two entry points derive child seeds differently, so their
        # ledgers must never silently resume each other
        path = tmp_path / "eval.jsonl"
        evaluate_methods(_CFG, _methods(), 2, seed=3, checkpoint=str(path))
        with pytest.raises(CheckpointMismatch, match="kind"):
            evaluate_methods_parallel(
                _CFG,
                _METHOD_KW["include"],
                2,
                seed=3,
                n_workers=1,
                grid_size=_METHOD_KW["grid_size"],
                max_iterations=_METHOD_KW["max_iterations"],
                checkpoint=str(path),
            )

    def test_parallel_one_worker_interrupt_resume(self, tmp_path):
        kwargs = dict(
            n_workers=1,
            grid_size=_METHOD_KW["grid_size"],
            max_iterations=_METHOD_KW["max_iterations"],
        )
        names = _METHOD_KW["include"]
        reference = evaluate_methods_parallel(_CFG, names, 2, seed=3, **kwargs)
        path = tmp_path / "evalp.jsonl"
        with pytest.raises(CheckpointAbort):
            evaluate_methods_parallel(
                _CFG, names, 2, seed=3,
                checkpoint=Checkpoint(path, abort_after=1), **kwargs,
            )
        resumed = evaluate_methods_parallel(
            _CFG, names, 2, seed=3, checkpoint=str(path), **kwargs
        )
        assert _flatten(resumed) == _flatten(reference)

    @pytest.mark.slow
    def test_parallel_pool_interrupt_resume(self, tmp_path):
        kwargs = dict(
            n_workers=2,
            grid_size=_METHOD_KW["grid_size"],
            max_iterations=_METHOD_KW["max_iterations"],
        )
        names = _METHOD_KW["include"]
        reference = evaluate_methods_parallel(_CFG, names, 3, seed=3, **kwargs)
        path = tmp_path / "evalp.jsonl"
        with pytest.raises(CheckpointAbort):
            evaluate_methods_parallel(
                _CFG, names, 3, seed=3,
                checkpoint=Checkpoint(path, abort_after=1), **kwargs,
            )
        assert read_ledger(path).n_records >= 1
        resumed = evaluate_methods_parallel(
            _CFG, names, 3, seed=3, checkpoint=str(path), **kwargs
        )
        assert _flatten(resumed) == _flatten(reference)


class TestResumeSweep:
    _VALUES = [0.05, 0.2]

    def _sweep(self, checkpoint=None):
        return run_sweep(
            _CFG, "noise_ratio", self._VALUES, _methods(), 2, seed=9,
            checkpoint=checkpoint,
        )

    def _flatten_sweep(self, sweep):
        return [_flatten(pt) for pt in sweep.points]

    def test_interrupt_resume_bit_identical(self, tmp_path):
        reference = self._sweep()
        path = tmp_path / "sweep.jsonl"
        # die after 2 of 4 cells — mid-curve, first point unfinished too
        with pytest.raises(CheckpointAbort):
            self._sweep(checkpoint=Checkpoint(path, abort_after=2))
        progress = ledger_progress(path)
        assert progress.n_done == 2 and progress.total_cells == 4
        assert not progress.complete
        assert "incomplete" in format_progress(progress)
        resumed = self._sweep(checkpoint=str(path))
        assert self._flatten_sweep(resumed) == self._flatten_sweep(reference)
        done = ledger_progress(path)
        assert done.complete and "re-runs nothing" in format_progress(done)

    def test_finished_ledger_resume_is_noop(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        self._sweep(checkpoint=str(path))
        ck = Checkpoint(path)
        again = self._sweep(checkpoint=ck)
        assert ck.n_recorded == 0 and ck.n_replayed == 4
        assert self._flatten_sweep(again) == self._flatten_sweep(self._sweep())
        ck.close()

    def test_mismatched_sweep_rejected(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        self._sweep(checkpoint=str(path))
        with pytest.raises(CheckpointMismatch, match="values"):
            run_sweep(
                _CFG, "noise_ratio", [0.05, 0.3], _methods(), 2, seed=9,
                checkpoint=str(path),
            )

    def test_progress_requires_existing_ledger(self, tmp_path):
        with pytest.raises(LedgerError, match="does not exist"):
            ledger_progress(tmp_path / "nope.jsonl")


# ---------------------------------------------------------------------- #
# crash recovery: real subprocesses, real signals
# ---------------------------------------------------------------------- #
_CRASH_SCRIPT = """\
import sys

from repro.experiments import ScenarioConfig
from repro.experiments.runner import run_sweep, standard_methods


def main():
    cfg = ScenarioConfig(n_nodes=16, anchor_ratio=0.25, radio_range=0.45)
    methods = standard_methods(
        grid_size=10, max_iterations=5, include=["bn-pk", "centroid"]
    )
    run_sweep(
        cfg, "noise_ratio", [0.05, 0.1, 0.2], methods,
        n_trials=3, seed=17, checkpoint=sys.argv[1],
    )


if __name__ == "__main__":
    main()
"""


@pytest.mark.slow
class TestCrashRecovery:
    """Kill a checkpointed sweep subprocess mid-run, resume its ledger
    in-process, and demand bit-identity with an uninterrupted run."""

    def _reference(self):
        cfg = ScenarioConfig(n_nodes=16, anchor_ratio=0.25, radio_range=0.45)
        methods = standard_methods(
            grid_size=10, max_iterations=5, include=["bn-pk", "centroid"]
        )
        return run_sweep(
            cfg, "noise_ratio", [0.05, 0.1, 0.2], methods, n_trials=3, seed=17
        )

    def _resume(self, ledger):
        cfg = ScenarioConfig(n_nodes=16, anchor_ratio=0.25, radio_range=0.45)
        methods = standard_methods(
            grid_size=10, max_iterations=5, include=["bn-pk", "centroid"]
        )
        return run_sweep(
            cfg, "noise_ratio", [0.05, 0.1, 0.2], methods,
            n_trials=3, seed=17, checkpoint=str(ledger),
        )

    def _spawn(self, tmp_path):
        # spawned multiprocessing workers cannot re-import <stdin>, and the
        # killed process must be a real interpreter: run a script file
        script = tmp_path / "sweep_forever.py"
        script.write_text(_CRASH_SCRIPT)
        ledger = tmp_path / "sweep.jsonl"
        env = dict(os.environ, PYTHONPATH=str(_SRC))
        proc = subprocess.Popen(
            [sys.executable, str(script), str(ledger)],
            env=env,
            cwd=tmp_path,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        return proc, ledger

    def _wait_for_records(self, proc, ledger, n_lines, timeout=90.0):
        """Poll until the ledger holds ≥ *n_lines* complete lines (header
        included) or the subprocess exits on its own."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if ledger.exists() and ledger.read_text().count("\n") >= n_lines:
                return True
            if proc.poll() is not None:
                return False
            time.sleep(0.005)
        pytest.fail("subprocess produced no durable records in time")

    @pytest.mark.parametrize("min_lines", [2, 5])
    def test_sigkill_mid_sweep_then_resume_bit_identical(self, tmp_path, min_lines):
        proc, ledger = self._spawn(tmp_path)
        mid_run = self._wait_for_records(proc, ledger, min_lines)
        killed = proc.poll() is None
        if killed:
            os.kill(proc.pid, signal.SIGKILL)
        _, stderr = proc.communicate(timeout=30)
        if not mid_run and proc.returncode != 0:
            pytest.fail(f"subprocess died on its own: {stderr.decode()!r}")
        if killed:
            assert proc.returncode == -signal.SIGKILL
        # the ledger survived the kill: valid header, durable records
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # a torn tail is fine
            progress = ledger_progress(ledger)
        assert progress.meta["kind"] == "sweep"
        assert progress.n_done >= 1
        resumed = self._resume(ledger)
        reference = self._reference()
        assert [_flatten(pt) for pt in resumed.points] == [
            _flatten(pt) for pt in reference.points
        ]
        # and the ledger is now complete: a second resume re-runs nothing
        assert ledger_progress(ledger).complete

    def test_sigterm_flushes_and_exits_cleanly(self, tmp_path):
        proc, ledger = self._spawn(tmp_path)
        mid_run = self._wait_for_records(proc, ledger, 2)
        terminated = proc.poll() is None
        if terminated:
            os.kill(proc.pid, signal.SIGTERM)
        _, stderr = proc.communicate(timeout=30)
        if not mid_run and proc.returncode != 0:
            pytest.fail(f"subprocess died on its own: {stderr.decode()!r}")
        if terminated:
            # trap_signals turned SIGTERM into KeyboardInterrupt: the
            # process unwound (nonzero exit), it was not hard-killed
            assert proc.returncode not in (0, -signal.SIGTERM)
            assert b"KeyboardInterrupt" in stderr
        progress = ledger_progress(ledger)
        assert progress.n_done >= 1
        resumed = self._resume(ledger)
        reference = self._reference()
        assert [_flatten(pt) for pt in resumed.points] == [
            _flatten(pt) for pt in reference.points
        ]
