"""Integration-grade tests for the core localizers (grid BP, NBP, pipeline).

These run small fixed-seed networks end-to-end and assert the statistical
behaviours the method must exhibit: beats-uniform-guessing accuracy,
pre-knowledge improving accuracy, negative evidence helping, convergence,
and the Localizer interface contract.
"""

import numpy as np
import pytest

from repro.core import (
    CooperativeLocalizer,
    GridBPConfig,
    GridBPLocalizer,
    NBPConfig,
    NBPLocalizer,
)
from repro.core.result import LocalizationResult
from repro.measurement import ConnectivityOnly, GaussianRanging, observe
from repro.network import NetworkConfig, UnitDiskRadio, generate_network
from repro.priors import GaussianPrior, PerNodePrior, UniformPrior


@pytest.fixture(scope="module")
def net():
    return generate_network(
        NetworkConfig(
            n_nodes=60,
            anchor_ratio=0.15,
            radio=UnitDiskRadio(0.25),
            require_connected=True,
        ),
        rng=7,
    )


@pytest.fixture(scope="module")
def measurements(net):
    return observe(net, GaussianRanging(0.02), rng=8)


SMALL_CFG = GridBPConfig(grid_size=15, max_iterations=10)


def mean_unknown_error(result, net):
    err = result.errors(net.positions)
    return float(np.nanmean(err[~net.anchor_mask]))


class TestGridBPLocalizer:
    def test_localizes_all_unknowns(self, net, measurements):
        result = GridBPLocalizer(config=SMALL_CFG).localize(measurements)
        assert result.localized_mask.all()
        assert np.isfinite(result.estimates).all()

    def test_accuracy_beats_field_center_guess(self, net, measurements):
        result = GridBPLocalizer(config=SMALL_CFG).localize(measurements)
        err = mean_unknown_error(result, net)
        center_guess = np.linalg.norm(
            net.positions[~net.anchor_mask] - [0.5, 0.5], axis=1
        ).mean()
        assert err < 0.6 * center_guess

    def test_anchor_rows_exact(self, net, measurements):
        result = GridBPLocalizer(config=SMALL_CFG).localize(measurements)
        np.testing.assert_allclose(
            result.estimates[net.anchor_mask], net.positions[net.anchor_mask]
        )

    def test_pre_knowledge_improves_accuracy(self, net, measurements):
        base = GridBPLocalizer(config=SMALL_CFG).localize(measurements)
        prior = PerNodePrior(net.positions, sigma=0.08)
        pk = GridBPLocalizer(prior=prior, config=SMALL_CFG).localize(measurements)
        assert mean_unknown_error(pk, net) < mean_unknown_error(base, net)

    def test_deterministic(self, measurements):
        a = GridBPLocalizer(config=SMALL_CFG).localize(measurements)
        b = GridBPLocalizer(config=SMALL_CFG).localize(measurements)
        np.testing.assert_array_equal(a.estimates, b.estimates)

    def test_connectivity_only_mode(self, net):
        ms = observe(net, ConnectivityOnly(), rng=1)
        result = GridBPLocalizer(config=SMALL_CFG).localize(ms)
        assert result.localized_mask.all()
        # range-free is coarser than ranged but must beat random placement
        err = mean_unknown_error(result, net)
        assert err < 0.3

    def test_ranging_beats_connectivity_only(self, net, measurements):
        ranged = GridBPLocalizer(config=SMALL_CFG).localize(measurements)
        ms_conn = observe(net, ConnectivityOnly(), rng=1)
        conn = GridBPLocalizer(config=SMALL_CFG).localize(ms_conn)
        assert mean_unknown_error(ranged, net) < mean_unknown_error(conn, net)

    def test_negative_evidence_helps_range_free(self, net):
        ms = observe(net, ConnectivityOnly(), rng=1)
        cfg_on = GridBPConfig(grid_size=15, max_iterations=10, use_negative_evidence=True)
        cfg_off = GridBPConfig(grid_size=15, max_iterations=10, use_negative_evidence=False)
        on = GridBPLocalizer(config=cfg_on).localize(ms)
        off = GridBPLocalizer(config=cfg_off).localize(ms)
        assert mean_unknown_error(on, net) <= mean_unknown_error(off, net) + 0.01

    def test_trace_recorded(self, measurements):
        cfg = GridBPConfig(grid_size=15, max_iterations=6, record_trace=True, tol=1e-12)
        result = GridBPLocalizer(config=cfg).localize(measurements)
        # trace[0] is the unary-only (iteration 0) snapshot
        assert len(result.trace) == result.n_iterations + 1
        assert result.trace[0].shape == result.estimates.shape

    def test_convergence_trace_improves(self, net, measurements):
        cfg = GridBPConfig(grid_size=15, max_iterations=10, record_trace=True, tol=1e-12)
        result = GridBPLocalizer(config=cfg).localize(measurements)
        unknown = ~net.anchor_mask
        # Cooperation must improve on the unary-only (iteration 0) estimate.
        first = np.linalg.norm(
            result.trace[0][unknown] - net.positions[unknown], axis=1
        ).mean()
        last = np.linalg.norm(
            result.trace[-1][unknown] - net.positions[unknown], axis=1
        ).mean()
        assert last < first

    def test_message_accounting(self, measurements):
        result = GridBPLocalizer(config=SMALL_CFG).localize(measurements)
        assert result.messages_sent > 0
        # Anchor broadcasts carry the anchor's position (2 float64);
        # unknown-unknown messages carry a K-vector of float64.
        ms = measurements
        anchor_msgs = sum(
            1
            for i, j in ms.edges()
            if bool(ms.anchor_mask[i]) != bool(ms.anchor_mask[j])
        )
        uu_msgs = result.messages_sent - anchor_msgs
        assert uu_msgs > 0
        assert result.bytes_sent == anchor_msgs * 2 * 8 + uu_msgs * 15 * 15 * 8

    def test_map_estimator_on_cell_centers(self, measurements):
        cfg = GridBPConfig(grid_size=15, max_iterations=6, estimator="map")
        result = GridBPLocalizer(config=cfg).localize(measurements)
        grid = result.extras["grid"]
        unknowns = measurements.unknown_ids
        est = result.estimates[unknowns]
        cells = grid.cell_of(est)
        np.testing.assert_allclose(grid.centers[cells], est, atol=1e-9)

    def test_beliefs_are_distributions(self, measurements):
        result = GridBPLocalizer(config=SMALL_CFG).localize(measurements)
        for b in result.extras["beliefs"].values():
            assert b.shape == (15 * 15,)
            assert b.sum() == pytest.approx(1.0)
            assert (b >= 0).all()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GridBPConfig(grid_size=1)
        with pytest.raises(ValueError):
            GridBPConfig(max_iterations=0)
        with pytest.raises(ValueError):
            GridBPConfig(damping=1.0)
        with pytest.raises(ValueError):
            GridBPConfig(estimator="median")

    def test_zero_support_prior_raises(self, measurements):
        # a prior whose support misses the entire field is a modelling error
        from repro.priors import RegionPrior

        prior = RegionPrior(lambda pts: pts[:, 0] > 5.0)
        with pytest.raises(ValueError):
            GridBPLocalizer(prior=prior, config=SMALL_CFG).localize(measurements)

    def test_badly_wrong_prior_degrades_gracefully(self, net, measurements):
        # A confident but wrong prior pulls estimates toward its mean; the
        # result is worse than no prior, yet still finite and well-formed.
        prior = GaussianPrior([0.0, 0.0], 0.05)
        wrong = GridBPLocalizer(prior=prior, config=SMALL_CFG).localize(measurements)
        base = GridBPLocalizer(config=SMALL_CFG).localize(measurements)
        assert np.isfinite(wrong.estimates).all()
        assert mean_unknown_error(wrong, net) > mean_unknown_error(base, net)


class TestNBPLocalizer:
    def test_localizes_all_unknowns(self, net, measurements):
        cfg = NBPConfig(n_particles=100, n_iterations=3)
        result = NBPLocalizer(config=cfg).localize(measurements, rng=0)
        assert result.localized_mask.all()

    def test_reasonable_accuracy(self, net, measurements):
        cfg = NBPConfig(n_particles=150, n_iterations=5)
        result = NBPLocalizer(config=cfg).localize(measurements, rng=0)
        assert mean_unknown_error(result, net) < 0.2

    def test_prior_improves(self, net, measurements):
        cfg = NBPConfig(n_particles=150, n_iterations=4)
        base = NBPLocalizer(config=cfg).localize(measurements, rng=0)
        prior = PerNodePrior(net.positions, sigma=0.05)
        pk = NBPLocalizer(prior=prior, config=cfg).localize(measurements, rng=0)
        assert mean_unknown_error(pk, net) < mean_unknown_error(base, net)

    def test_reproducible_with_seed(self, measurements):
        cfg = NBPConfig(n_particles=80, n_iterations=2)
        a = NBPLocalizer(config=cfg).localize(measurements, rng=5)
        b = NBPLocalizer(config=cfg).localize(measurements, rng=5)
        np.testing.assert_array_equal(a.estimates, b.estimates)

    def test_rejects_range_free(self, net):
        ms = observe(net, ConnectivityOnly(), rng=0)
        with pytest.raises(ValueError):
            NBPLocalizer().localize(ms)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NBPConfig(n_particles=5)
        with pytest.raises(ValueError):
            NBPConfig(n_iterations=0)
        with pytest.raises(ValueError):
            NBPConfig(proposal_boost=0)


class TestCooperativeLocalizer:
    def test_run_pipeline(self, net):
        loc = CooperativeLocalizer("grid-bp", grid_config=SMALL_CFG)
        result = loc.run(net, GaussianRanging(0.02), rng=3)
        assert isinstance(result, LocalizationResult)
        assert result.method == "grid-bp"

    def test_evaluate_returns_errors(self, net):
        loc = CooperativeLocalizer("grid-bp", grid_config=SMALL_CFG)
        result, err = loc.evaluate(net, GaussianRanging(0.02), rng=3)
        assert err.shape == (net.n_nodes,)
        np.testing.assert_allclose(err[net.anchor_mask], 0.0, atol=1e-12)

    def test_nbp_method(self, net):
        loc = CooperativeLocalizer(
            "nbp", nbp_config=NBPConfig(n_particles=80, n_iterations=2)
        )
        result = loc.run(net, GaussianRanging(0.02), rng=3)
        assert result.method == "nbp"

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            CooperativeLocalizer("kalman")

    def test_run_reproducible(self, net):
        loc = CooperativeLocalizer("grid-bp", grid_config=SMALL_CFG)
        a = loc.run(net, GaussianRanging(0.02), rng=9)
        b = loc.run(net, GaussianRanging(0.02), rng=9)
        np.testing.assert_array_equal(a.estimates, b.estimates)


class TestLocalizationResult:
    def test_validation(self):
        with pytest.raises(ValueError):
            LocalizationResult(np.zeros((3, 3)), np.ones(3, bool), "m")
        with pytest.raises(ValueError):
            LocalizationResult(np.zeros((3, 2)), np.ones(2, bool), "m")
        est = np.full((3, 2), np.nan)
        with pytest.raises(ValueError):
            LocalizationResult(est, np.ones(3, bool), "m")

    def test_errors_nan_for_unlocalized(self):
        est = np.array([[0.0, 0.0], [np.nan, np.nan]])
        res = LocalizationResult(est, np.array([True, False]), "m")
        err = res.errors(np.zeros((2, 2)))
        assert err[0] == 0.0 and np.isnan(err[1])

    def test_errors_shape_check(self):
        res = LocalizationResult(np.zeros((2, 2)), np.ones(2, bool), "m")
        with pytest.raises(ValueError):
            res.errors(np.zeros((3, 2)))
