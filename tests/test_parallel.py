"""Tests for the parallel trial executor and the distributed BP simulator."""

import numpy as np
import pytest

from repro.core import GridBPConfig, GridBPLocalizer
from repro.measurement import ConnectivityOnly, GaussianRanging, observe
from repro.network import NetworkConfig, UnitDiskRadio, generate_network
from repro.parallel import DistributedBPSimulator, TrialExecutor, run_trials
from repro.parallel.executor import child_seed_ints


def _trial(seed: int) -> float:
    """Module-level trial function (picklable for the process pool)."""
    rng = np.random.default_rng(seed)
    return float(rng.uniform())


class TestRunTrials:
    def test_serial_reproducible(self):
        a = run_trials(_trial, 10, seed=42)
        b = run_trials(_trial, 10, seed=42)
        assert a == b

    def test_results_in_seed_order(self):
        seeds = child_seed_ints(42, 5)
        expected = [_trial(s) for s in seeds]
        assert run_trials(_trial, 5, seed=42) == expected

    def test_trials_independent(self):
        out = run_trials(_trial, 20, seed=0)
        assert len(set(out)) == 20

    def test_parallel_matches_serial(self):
        serial = run_trials(_trial, 8, seed=7, n_workers=1)
        parallel = run_trials(_trial, 8, seed=7, n_workers=2)
        assert serial == parallel

    def test_zero_trials(self):
        assert run_trials(_trial, 0, seed=0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            run_trials(_trial, -1, seed=0)
        with pytest.raises(ValueError):
            run_trials(_trial, 3, seed=0, n_workers=0)

    def test_executor_map(self):
        ex = TrialExecutor(n_workers=1)
        assert ex.map(_trial, 4, seed=1) == run_trials(_trial, 4, seed=1)

    def test_executor_map_over_blocks_independent(self):
        ex = TrialExecutor(n_workers=1)
        out = ex.map_over(lambda p, s: (p, _trial(s)), ["a", "b"], 3, seed=5)
        assert len(out) == 2 and len(out[0]) == 3
        # adding a parameter must not change earlier blocks
        out2 = ex.map_over(lambda p, s: (p, _trial(s)), ["a", "b", "c"], 3, seed=5)
        assert out2[:2] == out

    def test_executor_validation(self):
        with pytest.raises(ValueError):
            TrialExecutor(n_workers=0)


class TestDistributedBPSimulator:
    @pytest.fixture(scope="class")
    def scenario(self):
        net = generate_network(
            NetworkConfig(
                n_nodes=50,
                anchor_ratio=0.15,
                radio=UnitDiskRadio(0.25),
                require_connected=True,
            ),
            rng=1,
        )
        ms = observe(net, GaussianRanging(0.02), rng=2)
        return net, ms

    def test_matches_centralized_solver(self, scenario):
        net, ms = scenario
        cfg = GridBPConfig(grid_size=15, max_iterations=8, tol=1e-9)
        central = GridBPLocalizer(config=cfg).localize(ms)
        dist, stats = DistributedBPSimulator(config=cfg).run(ms)
        np.testing.assert_allclose(dist.estimates, central.estimates, atol=1e-6)

    def test_round_stats_accounting(self, scenario):
        net, ms = scenario
        cfg = GridBPConfig(grid_size=12, max_iterations=5, tol=1e-12)
        result, stats = DistributedBPSimulator(config=cfg).run(ms)
        assert len(stats) == result.n_iterations
        # every unknown-unknown edge carries 2 messages per round
        uu_edges = sum(
            1
            for i, j in ms.edges()
            if not ms.anchor_mask[i] and not ms.anchor_mask[j]
        )
        for s in stats:
            assert s.messages == 2 * uu_edges
            assert s.bytes == s.messages * 12 * 12 * 8
        assert result.messages_sent >= sum(s.messages for s in stats)

    def test_residuals_recorded_and_finite(self, scenario):
        # Loopy BP message residuals need not decrease monotonically (and
        # on loopy graphs may plateau above tol); they must however be
        # finite, positive, and recorded per round.
        net, ms = scenario
        cfg = GridBPConfig(grid_size=12, max_iterations=10, tol=1e-12, damping=0.3)
        _, stats = DistributedBPSimulator(config=cfg).run(ms)
        assert all(np.isfinite(s.max_residual) for s in stats)
        assert all(s.max_residual >= 0 for s in stats)
        assert [s.round_index for s in stats] == list(range(1, len(stats) + 1))

    def test_range_free_mode(self, scenario):
        net, _ = scenario
        ms = observe(net, ConnectivityOnly(), rng=3)
        cfg = GridBPConfig(grid_size=12, max_iterations=4)
        central = GridBPLocalizer(config=cfg).localize(ms)
        dist, _ = DistributedBPSimulator(config=cfg).run(ms)
        np.testing.assert_allclose(dist.estimates, central.estimates, atol=1e-6)

    def test_localizes_everything(self, scenario):
        _, ms = scenario
        result, _ = DistributedBPSimulator(
            config=GridBPConfig(grid_size=12, max_iterations=4)
        ).run(ms)
        assert result.localized_mask.all()
