"""Tests for the parallel trial executor and the distributed BP simulator."""

import numpy as np
import pytest

from repro.core import GridBPConfig, GridBPLocalizer
from repro.measurement import ConnectivityOnly, GaussianRanging, observe
from repro.network import NetworkConfig, UnitDiskRadio, generate_network
from repro.obs import Tracer, merge_traces
from repro.parallel import DistributedBPSimulator, TrialExecutor, run_trials
from repro.parallel.executor import child_seed_ints


def _trial(seed: int) -> float:
    """Module-level trial function (picklable for the process pool)."""
    rng = np.random.default_rng(seed)
    return float(rng.uniform())


def _traced_localization_trial(seed: int) -> dict:
    """Picklable trial: localize a small seeded network under a Tracer.

    Returns only JSON/pickle-friendly data — the estimates and the
    deterministic part of the trace — so results can cross the process
    boundary and be compared field-for-field between worker counts.
    """
    net = generate_network(
        NetworkConfig(
            n_nodes=16,
            anchor_ratio=0.25,
            radio=UnitDiskRadio(0.45),
            require_connected=True,
        ),
        rng=seed,
    )
    ms = observe(net, GaussianRanging(0.05), rng=seed + 1)
    tracer = Tracer()
    result = GridBPLocalizer(
        config=GridBPConfig(grid_size=8, max_iterations=3, tol=1e-9),
        tracer=tracer,
    ).localize(ms)
    return {
        "estimates": result.estimates.tolist(),
        "trace": tracer.snapshot(include_timings=False),
        "full_trace": tracer.snapshot(),
    }


class TestRunTrials:
    def test_serial_reproducible(self):
        a = run_trials(_trial, 10, seed=42)
        b = run_trials(_trial, 10, seed=42)
        assert a == b

    def test_results_in_seed_order(self):
        seeds = child_seed_ints(42, 5)
        expected = [_trial(s) for s in seeds]
        assert run_trials(_trial, 5, seed=42) == expected

    def test_trials_independent(self):
        out = run_trials(_trial, 20, seed=0)
        assert len(set(out)) == 20

    def test_parallel_matches_serial(self):
        serial = run_trials(_trial, 8, seed=7, n_workers=1)
        parallel = run_trials(_trial, 8, seed=7, n_workers=2)
        assert serial == parallel

    def test_zero_trials(self):
        assert run_trials(_trial, 0, seed=0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            run_trials(_trial, -1, seed=0)
        with pytest.raises(ValueError):
            run_trials(_trial, 3, seed=0, n_workers=0)

    def test_executor_map(self):
        ex = TrialExecutor(n_workers=1)
        assert ex.map(_trial, 4, seed=1) == run_trials(_trial, 4, seed=1)

    def test_executor_map_over_blocks_independent(self):
        ex = TrialExecutor(n_workers=1)
        out = ex.map_over(lambda p, s: (p, _trial(s)), ["a", "b"], 3, seed=5)
        assert len(out) == 2 and len(out[0]) == 3
        # adding a parameter must not change earlier blocks
        out2 = ex.map_over(lambda p, s: (p, _trial(s)), ["a", "b", "c"], 3, seed=5)
        assert out2[:2] == out

    def test_executor_validation(self):
        with pytest.raises(ValueError):
            TrialExecutor(n_workers=0)

    def test_chunksize_validation(self):
        with pytest.raises(ValueError, match="chunksize must be >= 1, got 0"):
            run_trials(_trial, 3, seed=0, chunksize=0)
        with pytest.raises(ValueError, match="chunksize must be >= 1, got -2"):
            run_trials(_trial, 3, seed=0, n_workers=2, chunksize=-2)
        with pytest.raises(ValueError, match="chunksize must be >= 1"):
            TrialExecutor(n_workers=2, chunksize=0)

    def test_unpicklable_fn_fails_fast_with_guidance(self):
        captured = []  # closure over a local → not picklable
        with pytest.raises(TypeError, match="module-level callable"):
            run_trials(lambda s: captured.append(s), 4, seed=0, n_workers=2)
        with pytest.raises(TypeError, match="n_workers=1"):
            TrialExecutor(n_workers=2)._map_param(
                lambda p, s: (p, s), "a", 2, seed=0
            )

    def test_unpicklable_fn_fine_when_serial(self):
        out = run_trials(lambda s: s, 3, seed=0, n_workers=1)
        assert out == list(child_seed_ints(0, 3))

    def test_tracer_times_and_counts_batch(self):
        tracer = Tracer()
        run_trials(_trial, 6, seed=3, tracer=tracer)
        trace = tracer.snapshot()
        assert trace["counters"]["trials"] == 6
        assert trace["meta"]["n_workers"] == 1
        assert trace["timers"]["run_trials"]["calls"] == 1
        assert trace["timers"]["run_trials"]["seconds"] >= 0


class TestParallelDeterminism:
    """run_trials must give identical, trial-ordered results for any
    worker count, and worker-side traces must aggregate to serial totals."""

    @pytest.mark.slow
    def test_worker_count_does_not_change_traced_results(self):
        serial = run_trials(_traced_localization_trial, 4, seed=99, n_workers=1)
        parallel = run_trials(_traced_localization_trial, 4, seed=99, n_workers=2)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            # exact: grid BP consumes no randomness beyond the trial seed,
            # and tracing is observation-only even across process boundaries
            assert s["estimates"] == p["estimates"]
            assert s["trace"] == p["trace"]

    @pytest.mark.slow
    def test_worker_traces_merge_to_serial_totals(self):
        serial = run_trials(_traced_localization_trial, 4, seed=99, n_workers=1)
        parallel = run_trials(_traced_localization_trial, 4, seed=99, n_workers=2)
        merged_serial = merge_traces([r["full_trace"] for r in serial])
        merged_parallel = merge_traces([r["full_trace"] for r in parallel])
        assert merged_parallel["n_runs"] == 4
        assert merged_parallel["counters"] == merged_serial["counters"]
        assert (
            merged_parallel["n_iterations_total"]
            == merged_serial["n_iterations_total"]
        )
        # timer call counts are deterministic; seconds are wall clock
        for path, entry in merged_serial["timers"].items():
            assert merged_parallel["timers"][path]["calls"] == entry["calls"]

    def test_chunksize_does_not_change_results(self):
        base = run_trials(_trial, 10, seed=11, n_workers=1)
        for chunksize in (1, 3, 10):
            assert (
                run_trials(_trial, 10, seed=11, n_workers=2, chunksize=chunksize)
                == base
            )


class TestDistributedBPSimulator:
    @pytest.fixture(scope="class")
    def scenario(self):
        net = generate_network(
            NetworkConfig(
                n_nodes=50,
                anchor_ratio=0.15,
                radio=UnitDiskRadio(0.25),
                require_connected=True,
            ),
            rng=1,
        )
        ms = observe(net, GaussianRanging(0.02), rng=2)
        return net, ms

    def test_matches_centralized_solver(self, scenario):
        net, ms = scenario
        cfg = GridBPConfig(grid_size=15, max_iterations=8, tol=1e-9)
        central = GridBPLocalizer(config=cfg).localize(ms)
        dist, stats = DistributedBPSimulator(config=cfg).run(ms)
        np.testing.assert_allclose(dist.estimates, central.estimates, atol=1e-6)
        # Both solvers bill the same convention (anchor broadcast = one
        # position of 2 float64, unknown-unknown message = K float64), so
        # with identical round counts the accounting must agree exactly.
        assert dist.n_iterations == central.n_iterations
        assert dist.messages_sent == central.messages_sent
        assert dist.bytes_sent == central.bytes_sent

    def test_round_stats_accounting(self, scenario):
        net, ms = scenario
        cfg = GridBPConfig(grid_size=12, max_iterations=5, tol=1e-12)
        result, stats = DistributedBPSimulator(config=cfg).run(ms)
        assert len(stats) == result.n_iterations
        # every unknown-unknown edge carries 2 messages per round
        uu_edges = sum(
            1
            for i, j in ms.edges()
            if not ms.anchor_mask[i] and not ms.anchor_mask[j]
        )
        for s in stats:
            assert s.messages == 2 * uu_edges
            assert s.bytes == s.messages * 12 * 12 * 8
        assert result.messages_sent >= sum(s.messages for s in stats)

    def test_residuals_recorded_and_finite(self, scenario):
        # Loopy BP message residuals need not decrease monotonically (and
        # on loopy graphs may plateau above tol); they must however be
        # finite, positive, and recorded per round.
        net, ms = scenario
        cfg = GridBPConfig(grid_size=12, max_iterations=10, tol=1e-12, damping=0.3)
        _, stats = DistributedBPSimulator(config=cfg).run(ms)
        assert all(np.isfinite(s.max_residual) for s in stats)
        assert all(s.max_residual >= 0 for s in stats)
        assert [s.round_index for s in stats] == list(range(1, len(stats) + 1))

    def test_range_free_mode(self, scenario):
        net, _ = scenario
        ms = observe(net, ConnectivityOnly(), rng=3)
        cfg = GridBPConfig(grid_size=12, max_iterations=4)
        central = GridBPLocalizer(config=cfg).localize(ms)
        dist, _ = DistributedBPSimulator(config=cfg).run(ms)
        np.testing.assert_allclose(dist.estimates, central.estimates, atol=1e-6)

    def test_localizes_everything(self, scenario):
        _, ms = scenario
        result, _ = DistributedBPSimulator(
            config=GridBPConfig(grid_size=12, max_iterations=4)
        ).run(ms)
        assert result.localized_mask.all()
