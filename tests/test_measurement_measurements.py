"""Unit tests for repro.measurement.measurements and repro.measurement.rssi."""

import numpy as np
import pytest

from repro.measurement.measurements import MeasurementSet, observe
from repro.measurement.ranging import ConnectivityOnly, GaussianRanging
from repro.measurement.rssi import PathLossModel, distance_from_rssi, rssi_from_distance
from repro.network.generator import NetworkConfig, generate_network


@pytest.fixture(scope="module")
def net():
    return generate_network(NetworkConfig(n_nodes=40, anchor_ratio=0.15), rng=0)


class TestObserve:
    def test_default_connectivity_only(self, net):
        ms = observe(net, rng=0)
        assert not ms.has_ranging
        assert np.isnan(ms.observed_distances).all()

    def test_gaussian_ranging_links_only(self, net):
        ms = observe(net, GaussianRanging(0.02), rng=0)
        assert ms.has_ranging
        linked = ms.adjacency
        assert np.isfinite(ms.observed_distances[linked]).all()
        assert np.isnan(ms.observed_distances[~linked]).all()

    def test_observed_close_to_truth(self, net):
        ms = observe(net, GaussianRanging(0.001), rng=0)
        from repro.utils.geometry import pairwise_distances

        true = pairwise_distances(net.positions)
        err = ms.observed_distances[ms.adjacency] - true[ms.adjacency]
        assert np.abs(err).max() < 0.01

    def test_anchor_positions_exposed_only_for_anchors(self, net):
        ms = observe(net, rng=0)
        assert np.isfinite(ms.anchor_positions_full[ms.anchor_mask]).all()
        assert np.isnan(ms.anchor_positions_full[~ms.anchor_mask]).all()
        np.testing.assert_array_equal(
            ms.anchor_positions, net.positions[net.anchor_mask]
        )

    def test_adjacency_copied(self, net):
        ms = observe(net, rng=0)
        ms.adjacency[0, 1] = not ms.adjacency[0, 1]
        assert ms.adjacency[0, 1] != net.adjacency[0, 1] or True  # no crash
        # network itself unchanged
        assert net.adjacency[0, 1] == net.adjacency[1, 0]

    def test_reproducible(self, net):
        a = observe(net, GaussianRanging(0.05), rng=11)
        b = observe(net, GaussianRanging(0.05), rng=11)
        np.testing.assert_array_equal(
            a.observed_distances[a.adjacency], b.observed_distances[b.adjacency]
        )


class TestMeasurementSet:
    def test_views(self, net):
        ms = observe(net, GaussianRanging(0.02), rng=0)
        assert ms.n_nodes == net.n_nodes
        np.testing.assert_array_equal(ms.anchor_ids, net.anchor_ids)
        np.testing.assert_array_equal(ms.unknown_ids, net.unknown_ids)
        i = int(ms.unknown_ids[0])
        np.testing.assert_array_equal(ms.neighbors(i), net.neighbors(i))

    def test_link_distance(self, net):
        ms = observe(net, GaussianRanging(0.02), rng=0)
        edges = ms.edges()
        i, j = edges[0]
        assert ms.link_distance(i, j) == ms.observed_distances[i, j]

    def test_link_distance_rejects_non_link(self, net):
        ms = observe(net, GaussianRanging(0.02), rng=0)
        nonlinks = np.argwhere(~ms.adjacency)
        i, j = nonlinks[nonlinks[:, 0] != nonlinks[:, 1]][0]
        with pytest.raises(ValueError):
            ms.link_distance(int(i), int(j))

    def test_validation_anchor_rows(self):
        with pytest.raises(ValueError):
            MeasurementSet(
                anchor_mask=np.array([True, False]),
                anchor_positions_full=np.full((2, 2), np.nan),
                adjacency=np.zeros((2, 2), bool),
                observed_distances=np.full((2, 2), np.nan),
                ranging=ConnectivityOnly(),
                radio_range=0.2,
            )


class TestRSSIConversion:
    def test_round_trip_noise_free(self):
        pl = PathLossModel(shadowing_db=0.0)
        d = np.array([0.05, 0.2, 0.8])
        rssi = rssi_from_distance(d, pl, rng=0)
        np.testing.assert_allclose(distance_from_rssi(rssi, pl), d, rtol=1e-10)

    def test_rssi_decreases_with_distance(self):
        pl = PathLossModel(shadowing_db=0.0)
        r = pl.mean_rssi(np.array([0.1, 0.2, 0.4]))
        assert r[0] > r[1] > r[2]

    def test_reference_distance_floor(self):
        pl = PathLossModel(d0=0.01, shadowing_db=0.0)
        assert pl.mean_rssi(np.array([0.001]))[0] == pl.mean_rssi(np.array([0.01]))[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            PathLossModel(path_loss_exponent=0.0)
        with pytest.raises(ValueError):
            PathLossModel(shadowing_db=-1.0)
