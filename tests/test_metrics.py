"""Unit and property tests for repro.metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import GridBPConfig, GridBPLocalizer
from repro.measurement import ConnectivityOnly, GaussianRanging, observe
from repro.metrics import (
    cdf_at,
    cooperative_crlb,
    coverage,
    empirical_cdf,
    error_per_iteration,
    mean_error,
    median_error,
    rmse,
    summarize_errors,
)
from repro.network import NetworkConfig, UnitDiskRadio, generate_network

finite_errors = arrays(
    np.float64,
    st.integers(1, 30),
    elements=st.floats(0, 10, allow_nan=False),
)


class TestErrorStats:
    def test_known_values(self):
        e = np.array([3.0, 4.0])
        assert mean_error(e) == pytest.approx(3.5)
        assert rmse(e) == pytest.approx(np.sqrt(12.5))
        assert median_error(e) == pytest.approx(3.5)

    def test_nan_excluded(self):
        e = np.array([1.0, np.nan, 3.0])
        assert mean_error(e) == pytest.approx(2.0)
        assert coverage(e) == pytest.approx(2 / 3)

    def test_all_nan(self):
        e = np.array([np.nan, np.nan])
        assert np.isnan(mean_error(e))
        assert coverage(e) == 0.0

    def test_empty(self):
        assert coverage(np.array([])) == 0.0
        assert np.isnan(rmse(np.array([])))

    @given(finite_errors)
    @settings(max_examples=40, deadline=None)
    def test_rmse_ge_mean_ge_zero(self, e):
        assert rmse(e) >= mean_error(e) - 1e-12
        assert mean_error(e) >= 0

    def test_summary(self):
        e = np.array([0.0, 0.1, 0.2, np.nan])
        s = summarize_errors(e, radio_range=0.2)
        assert s.mean == pytest.approx(0.1)
        assert s.mean_norm == pytest.approx(0.5)
        assert s.coverage == pytest.approx(0.75)
        assert s.p90 <= 0.2 + 1e-9

    def test_summary_unknown_mask(self):
        e = np.array([0.0, 0.5, 0.5])
        s = summarize_errors(e, 0.25, unknown_mask=np.array([False, True, True]))
        assert s.mean == pytest.approx(0.5)
        assert s.mean_norm == pytest.approx(2.0)

    def test_summary_validation(self):
        with pytest.raises(ValueError):
            summarize_errors(np.array([0.1]), radio_range=0)
        with pytest.raises(ValueError):
            summarize_errors(np.array([0.1]), 0.2, unknown_mask=np.array([True, False]))


class TestCDF:
    def test_empirical_cdf_steps(self):
        x, F = empirical_cdf(np.array([0.3, 0.1, 0.2]))
        np.testing.assert_allclose(x, [0.1, 0.2, 0.3])
        np.testing.assert_allclose(F, [1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        x, F = empirical_cdf(np.array([np.nan]))
        assert len(x) == 0 and len(F) == 0

    @given(finite_errors)
    @settings(max_examples=30, deadline=None)
    def test_cdf_monotone_and_bounded(self, e):
        x, F = empirical_cdf(e)
        assert (np.diff(F) >= 0).all()
        assert F[-1] == pytest.approx(1.0)

    def test_cdf_at(self):
        e = np.array([0.1, 0.2, 0.3, 0.4])
        out = cdf_at(e, np.array([0.0, 0.25, 1.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_cdf_at_empty(self):
        np.testing.assert_allclose(cdf_at(np.array([]), np.array([1.0])), [0.0])


class TestCRLB:
    @pytest.fixture(scope="class")
    def net(self):
        return generate_network(
            NetworkConfig(
                n_nodes=50,
                anchor_ratio=0.2,
                radio=UnitDiskRadio(0.3),
                require_connected=True,
            ),
            rng=5,
        )

    def test_bound_positive_finite(self, net):
        b = cooperative_crlb(net, GaussianRanging(0.02))
        unknown = ~net.anchor_mask
        assert np.isnan(b[net.anchor_mask]).all()
        assert (b[unknown] > 0).all()
        assert np.isfinite(b[unknown]).all()

    def test_bound_scales_with_noise(self, net):
        lo = cooperative_crlb(net, GaussianRanging(0.01))
        hi = cooperative_crlb(net, GaussianRanging(0.05))
        unknown = ~net.anchor_mask
        assert np.nanmean(hi[unknown]) > np.nanmean(lo[unknown])
        # constant-σ Gaussian ranging: bound scales exactly linearly in σ
        np.testing.assert_allclose(hi[unknown] / lo[unknown], 5.0, rtol=1e-6)

    def test_prior_tightens_bound(self, net):
        plain = cooperative_crlb(net, GaussianRanging(0.03))
        with_prior = cooperative_crlb(net, GaussianRanging(0.03), prior_sigma=0.05)
        unknown = ~net.anchor_mask
        assert (with_prior[unknown] <= plain[unknown] + 1e-12).all()

    def test_estimator_respects_bound(self, net):
        # MMSE estimate error (averaged over trials) must exceed the
        # Bayesian CRLB built with the matching prior information.
        sigma = 0.02
        bound = cooperative_crlb(net, GaussianRanging(sigma))
        unknown = ~net.anchor_mask
        errs = []
        for s in range(5):
            ms = observe(net, GaussianRanging(sigma), rng=100 + s)
            res = GridBPLocalizer(
                config=GridBPConfig(grid_size=20, max_iterations=10)
            ).localize(ms)
            errs.append(res.errors(net.positions)[unknown])
        mean_rms = np.sqrt(np.mean(np.array(errs) ** 2))
        assert mean_rms >= 0.5 * np.nanmean(bound[unknown])

    def test_rejects_rangefree(self, net):
        with pytest.raises(ValueError):
            cooperative_crlb(net, ConnectivityOnly())

    def test_rejects_bad_prior_sigma(self, net):
        with pytest.raises(ValueError):
            cooperative_crlb(net, GaussianRanging(0.02), prior_sigma=0.0)

    def test_disconnected_node_unbounded_without_prior(self):
        from repro.network import WSNetwork

        positions = np.array(
            [[0.0, 0.0], [0.3, 0.0], [0.0, 0.3], [0.2, 0.2], [0.9, 0.9]]
        )
        adj = np.zeros((5, 5), dtype=bool)
        for i, j in [(0, 3), (1, 3), (2, 3)]:
            adj[i, j] = adj[j, i] = True
        mask = np.array([True, True, True, False, False])
        net = WSNetwork(positions, mask, adj, radio_range=0.4)
        b = cooperative_crlb(net, GaussianRanging(0.02))
        assert np.isfinite(b[3])
        assert np.isinf(b[4])
        # ... but a prior bounds everyone
        b2 = cooperative_crlb(net, GaussianRanging(0.02), prior_sigma=0.1)
        assert np.isfinite(b2[4])


class TestConvergenceCurve:
    def test_error_per_iteration(self):
        net = generate_network(
            NetworkConfig(n_nodes=40, anchor_ratio=0.2, radio=UnitDiskRadio(0.3)),
            rng=2,
        )
        ms = observe(net, GaussianRanging(0.02), rng=3)
        cfg = GridBPConfig(grid_size=12, max_iterations=5, record_trace=True, tol=1e-12)
        res = GridBPLocalizer(config=cfg).localize(ms)
        curve = error_per_iteration(res, net.positions, ~net.anchor_mask)
        assert len(curve) == res.n_iterations + 1
        assert curve[-1] < curve[0]

    def test_requires_trace(self):
        net = generate_network(
            NetworkConfig(n_nodes=30, anchor_ratio=0.2, radio=UnitDiskRadio(0.3)),
            rng=2,
        )
        ms = observe(net, GaussianRanging(0.02), rng=3)
        res = GridBPLocalizer(config=GridBPConfig(grid_size=10)).localize(ms)
        with pytest.raises(ValueError):
            error_per_iteration(res, net.positions, ~net.anchor_mask)
