"""Unit tests for the repro.obs instrumentation layer itself."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Tracer,
    format_trace_table,
    merge_traces,
    trace_summary,
)


class FakeClock:
    """Deterministic clock: each reading advances by `step` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t


class TestNullTracer:
    def test_is_disabled_and_inert(self):
        t = NullTracer()
        assert t.enabled is False
        t.count("x")
        t.gauge_max("x", 3)
        t.annotate("x", 1)
        t.iteration(residual=0.5)
        with t.timer("phase"):
            pass
        assert t.snapshot() is None

    def test_module_singleton(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled


class TestTracerCounters:
    def test_count_accumulates(self):
        t = Tracer()
        t.count("messages", 10)
        t.count("messages", 5)
        t.count("runs")
        assert t.counters == {"messages": 15, "runs": 1}

    def test_gauge_keeps_max(self):
        t = Tracer()
        t.gauge_max("peak", 3)
        t.gauge_max("peak", 7)
        t.gauge_max("peak", 5)
        assert t.gauges == {"peak": 7}

    def test_annotate_scalars_only(self):
        t = Tracer()
        t.annotate("method", "grid-bp")
        t.annotate("converged", True)
        with pytest.raises(TypeError):
            t.annotate("bad", [1, 2])


class TestTracerIterations:
    def test_auto_numbering(self):
        t = Tracer()
        t.iteration(residual=0.5, messages=10)
        t.iteration(residual=0.25, messages=10)
        assert [r["iteration"] for r in t.iterations] == [1, 2]
        assert t.iterations[0]["residual"] == 0.5

    def test_explicit_iteration_wins(self):
        t = Tracer()
        t.iteration(iteration=7, residual=0.1)
        assert t.iterations[0]["iteration"] == 7

    def test_rejects_non_scalar_fields(self):
        t = Tracer()
        with pytest.raises(TypeError):
            t.iteration(residual=[0.1])


class TestTracerTimers:
    def test_nested_paths_and_totals(self):
        t = Tracer(clock=FakeClock())
        with t.timer("outer"):
            with t.timer("inner"):
                pass
        assert set(t.timers) == {"outer", "outer/inner"}
        assert t.timers["outer"]["calls"] == 1
        # Fake clock ticks once per reading: outer spans 3 ticks, inner 1.
        assert t.timers["outer"]["seconds"] >= t.timers["outer/inner"]["seconds"]

    def test_repeated_phase_accumulates_calls(self):
        t = Tracer(clock=FakeClock())
        for _ in range(3):
            with t.timer("phase"):
                pass
        assert t.timers["phase"]["calls"] == 3

    def test_parent_covers_children(self):
        t = Tracer(clock=FakeClock(step=0.5))
        with t.timer("parent"):
            with t.timer("a"):
                pass
            with t.timer("b"):
                pass
        children = t.timers["parent/a"]["seconds"] + t.timers["parent/b"]["seconds"]
        assert t.timers["parent"]["seconds"] >= children


class TestSnapshot:
    def _populated(self) -> Tracer:
        t = Tracer(clock=FakeClock())
        t.annotate("method", "grid-bp")
        t.count("messages", 42)
        t.gauge_max("peak", 9)
        with t.timer("run"):
            t.iteration(residual=0.5, messages=21)
            t.iteration(residual=0.25, messages=21)
        return t

    def test_json_serializable(self):
        snap = self._populated().snapshot()
        parsed = json.loads(json.dumps(snap))
        assert parsed == snap
        assert snap["schema_version"] == TRACE_SCHEMA_VERSION

    def test_without_timings_is_deterministic_section_only(self):
        snap = self._populated().snapshot(include_timings=False)
        assert "timers" not in snap
        assert snap["counters"]["messages"] == 42

    def test_snapshot_is_a_copy(self):
        t = self._populated()
        snap = t.snapshot()
        snap["counters"]["messages"] = 0
        snap["iterations"][0]["residual"] = -1
        assert t.counters["messages"] == 42
        assert t.iterations[0]["residual"] == 0.5

    def test_to_json_stable(self):
        t = self._populated()
        assert t.to_json() == t.to_json()
        assert json.loads(t.to_json(indent=2)) == t.snapshot()


class TestReport:
    def _trace(self) -> dict:
        t = Tracer(clock=FakeClock())
        t.annotate("method", "grid-bp")
        t.count("messages", 20)
        t.gauge_max("peak_factor_nnz", 64)
        with t.timer("bp"):
            t.iteration(residual=0.5, messages=10, messages_cum=10)
            t.iteration(residual=0.25, messages=10, messages_cum=20)
        return t.snapshot()

    def test_table_contains_iterations(self):
        table = format_trace_table(self._trace())
        assert "residual" in table and "messages_cum" in table
        assert "0.5" in table
        assert table.startswith("trace: grid-bp")

    def test_table_empty_trace(self):
        t = Tracer()
        assert "no iteration records" in format_trace_table(t.snapshot())

    def test_table_rejects_null_snapshot(self):
        with pytest.raises(TypeError):
            format_trace_table(NullTracer().snapshot())

    def test_table_extra_columns_appended(self):
        t = Tracer()
        t.iteration(residual=0.5, custom_field=3)
        assert "custom_field" in format_trace_table(t.snapshot())

    def test_summary_sections(self):
        s = trace_summary(self._trace())
        assert "counters:" in s and "timers:" in s and "peaks:" in s
        assert "messages = 20" in s

    def test_summary_empty(self):
        assert trace_summary(Tracer().snapshot()) == "(empty trace)"


class TestMergeTraces:
    def _worker_trace(self, messages: int, peak: int) -> dict:
        t = Tracer(clock=FakeClock())
        t.annotate("method", "grid-bp")
        t.annotate("seed", messages)  # differs per worker → dropped by merge
        t.count("messages", messages)
        t.gauge_max("peak", peak)
        with t.timer("run"):
            t.iteration(residual=0.5)
        return t.snapshot()

    def test_merge_sums_counters_and_timers(self):
        merged = merge_traces([self._worker_trace(10, 3), self._worker_trace(5, 8)])
        assert merged["counters"]["messages"] == 15
        assert merged["gauges"]["peak"] == 8
        assert merged["timers"]["run"]["calls"] == 2
        assert merged["n_runs"] == 2
        assert merged["n_iterations_total"] == 2

    def test_merge_keeps_only_agreeing_meta(self):
        merged = merge_traces([self._worker_trace(10, 3), self._worker_trace(5, 8)])
        assert merged["meta"] == {"method": "grid-bp"}

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_traces([])

    def test_merge_rejects_mixed_schema(self):
        a, b = self._worker_trace(1, 1), self._worker_trace(1, 1)
        b["schema_version"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            merge_traces([a, b])

    def test_merge_rejects_non_dict(self):
        with pytest.raises(TypeError):
            merge_traces([None])
