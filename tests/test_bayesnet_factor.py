"""Unit and property tests for repro.bayesnet.factor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesnet.factor import DiscreteFactor


def random_factor(rng, variables, cards):
    vals = rng.uniform(0.1, 1.0, size=tuple(cards))
    return DiscreteFactor(variables, cards, vals)


class TestConstruction:
    def test_basic(self):
        f = DiscreteFactor(["a", "b"], [2, 3], np.ones((2, 3)))
        assert f.cardinalities == (2, 3)
        assert f.cardinality("b") == 3
        assert f.scope() == {"a", "b"}

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            DiscreteFactor(["a", "a"], [2, 2], np.ones((2, 2)))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DiscreteFactor(["a"], [2], np.array([1.0, -0.1]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            DiscreteFactor(["a"], [2], np.array([1.0, np.nan]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            DiscreteFactor(["a", "b"], [2, 3], np.ones((3, 2)))

    def test_rejects_zero_cardinality(self):
        with pytest.raises(ValueError):
            DiscreteFactor(["a"], [0], np.ones(0))

    def test_copy_independent(self):
        f = DiscreteFactor(["a"], [2], np.array([0.3, 0.7]))
        g = f.copy()
        g.values[0] = 99.0
        assert f.values[0] == 0.3


class TestProduct:
    def test_known_product(self):
        f = DiscreteFactor(["a"], [2], np.array([1.0, 2.0]))
        g = DiscreteFactor(["b"], [2], np.array([3.0, 4.0]))
        h = f.product(g)
        np.testing.assert_allclose(h.values, [[3, 4], [6, 8]])
        assert h.variables == ("a", "b")

    def test_shared_variable(self):
        f = DiscreteFactor(["a", "b"], [2, 2], np.arange(4).reshape(2, 2) + 1.0)
        g = DiscreteFactor(["b"], [2], np.array([10.0, 100.0]))
        h = f.product(g)
        np.testing.assert_allclose(h.values, [[10, 200], [30, 400]])

    def test_commutative_up_to_axes(self):
        rng = np.random.default_rng(0)
        f = random_factor(rng, ["a", "b"], [2, 3])
        g = random_factor(rng, ["b", "c"], [3, 2])
        assert f.product(g).same_distribution(g.product(f))

    def test_cardinality_mismatch(self):
        f = DiscreteFactor(["a"], [2], np.ones(2))
        g = DiscreteFactor(["a"], [3], np.ones(3))
        with pytest.raises(ValueError):
            f.product(g)

    def test_type_check(self):
        f = DiscreteFactor(["a"], [2], np.ones(2))
        with pytest.raises(TypeError):
            f.product(np.ones(2))

    @given(st.integers(2, 4), st.integers(2, 4), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_associative(self, ca, cb, seed):
        rng = np.random.default_rng(seed)
        f = random_factor(rng, ["a"], [ca])
        g = random_factor(rng, ["a", "b"], [ca, cb])
        h = random_factor(rng, ["b"], [cb])
        left = f.product(g).product(h)
        right = f.product(g.product(h))
        assert left.same_distribution(right)


class TestMarginalize:
    def test_known(self):
        f = DiscreteFactor(["a", "b"], [2, 2], np.array([[1.0, 2.0], [3.0, 4.0]]))
        m = f.marginalize(["b"])
        np.testing.assert_allclose(m.values, [3.0, 7.0])
        assert m.variables == ("a",)

    def test_order_independent(self):
        rng = np.random.default_rng(1)
        f = random_factor(rng, ["a", "b", "c"], [2, 3, 2])
        m1 = f.marginalize(["a"]).marginalize(["c"])
        m2 = f.marginalize(["c"]).marginalize(["a"])
        m3 = f.marginalize(["a", "c"])
        np.testing.assert_allclose(m1.values, m2.values)
        np.testing.assert_allclose(m1.values, m3.values)

    def test_total_mass_preserved(self):
        rng = np.random.default_rng(2)
        f = random_factor(rng, ["a", "b"], [3, 4])
        assert f.marginalize(["b"]).values.sum() == pytest.approx(f.values.sum())

    def test_errors(self):
        f = DiscreteFactor(["a"], [2], np.ones(2))
        with pytest.raises(ValueError):
            f.marginalize(["z"])
        with pytest.raises(ValueError):
            f.marginalize(["a"])

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_marginal_of_product_consistency(self, seed):
        # sum_b f(a) g(b) = f(a) * sum_b g(b)
        rng = np.random.default_rng(seed)
        f = random_factor(rng, ["a"], [3])
        g = random_factor(rng, ["b"], [4])
        joint = f.product(g).marginalize(["b"])
        expected = f.values * g.values.sum()
        np.testing.assert_allclose(joint.values, expected, rtol=1e-10)


class TestMaximizeReduceNormalize:
    def test_maximize(self):
        f = DiscreteFactor(["a", "b"], [2, 2], np.array([[1.0, 5.0], [3.0, 2.0]]))
        m = f.maximize(["b"])
        np.testing.assert_allclose(m.values, [5.0, 3.0])

    def test_reduce(self):
        f = DiscreteFactor(["a", "b"], [2, 3], np.arange(6, dtype=float).reshape(2, 3))
        r = f.reduce({"b": 1})
        np.testing.assert_allclose(r.values, [1.0, 4.0])
        assert r.variables == ("a",)

    def test_reduce_ignores_out_of_scope(self):
        f = DiscreteFactor(["a"], [2], np.array([1.0, 2.0]))
        r = f.reduce({"z": 0})
        np.testing.assert_allclose(r.values, f.values)

    def test_reduce_full_scope_rejected(self):
        f = DiscreteFactor(["a"], [2], np.ones(2))
        with pytest.raises(ValueError):
            f.reduce({"a": 0})

    def test_reduce_out_of_range(self):
        f = DiscreteFactor(["a", "b"], [2, 2], np.ones((2, 2)))
        with pytest.raises(ValueError):
            f.reduce({"b": 5})

    def test_normalize(self):
        f = DiscreteFactor(["a"], [4], np.array([1.0, 1.0, 1.0, 1.0]))
        n = f.normalize()
        np.testing.assert_allclose(n.values, 0.25)

    def test_normalize_zero_mass(self):
        f = DiscreteFactor(["a"], [2], np.zeros(2))
        with pytest.raises(ValueError):
            f.normalize()

    def test_value_at_and_argmax(self):
        f = DiscreteFactor(["a", "b"], [2, 2], np.array([[0.1, 0.9], [0.5, 0.2]]))
        assert f.value_at({"a": 0, "b": 1}) == pytest.approx(0.9)
        assert f.argmax() == {"a": 0, "b": 1}

    def test_value_at_missing_var(self):
        f = DiscreteFactor(["a", "b"], [2, 2], np.ones((2, 2)))
        with pytest.raises(ValueError):
            f.value_at({"a": 0})

    def test_same_distribution_different_scope(self):
        f = DiscreteFactor(["a"], [2], np.ones(2))
        g = DiscreteFactor(["b"], [2], np.ones(2))
        assert not f.same_distribution(g)
