"""Edge-case pinning for the shared log-domain helpers (repro.utils.stablemath).

These helpers replaced hand-rolled log-sum-exp / softmax / log-floor code
at several call sites (MixturePrior, GridBeliefPrior, Gibbs resampling,
the NLOS mixture); the tests here pin the tail behaviour centrally so it
cannot regress one site at a time.
"""

import numpy as np
import pytest

from repro.utils import logsumexp, safe_log, softmax_from_log
from repro.utils.stablemath import LOG_FLOOR


class TestLogSumExp:
    def test_matches_naive_on_finite(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(50,)) * 10
        expected = np.log(np.exp(a).sum())
        assert np.isclose(logsumexp(a), expected)

    def test_bit_identical_to_handrolled_idiom(self):
        # The exact op order the call sites previously hand-rolled; routing
        # them through the helper must not change a single bit.
        rng = np.random.default_rng(1)
        z = rng.normal(size=(40, 7)) * 50 - 200
        m = z.max(axis=1, keepdims=True)
        handrolled = m[:, 0] + np.log(np.exp(z - m).sum(axis=1))
        assert np.array_equal(logsumexp(z, axis=1), handrolled)

    def test_all_neginf_returns_neginf_not_nan(self):
        assert logsumexp(np.array([-np.inf, -np.inf])) == -np.inf

    def test_axis_rows_with_neginf_slice(self):
        z = np.array([[0.0, 1.0], [-np.inf, -np.inf]])
        out = logsumexp(z, axis=1)
        assert np.isclose(out[0], np.logaddexp(0.0, 1.0))
        assert out[1] == -np.inf
        assert not np.isnan(out).any()

    def test_large_magnitudes_no_overflow(self):
        a = np.array([1e308, 1e308 - 700.0])
        out = logsumexp(a)
        assert np.isfinite(out) and out >= 1e308

    def test_deep_underflow(self):
        a = np.array([-1e308, -1e308 + 1.0])
        out = logsumexp(a)
        assert np.isfinite(out)

    def test_posinf_propagates(self):
        assert logsumexp(np.array([0.0, np.inf])) == np.inf

    def test_single_element(self):
        assert logsumexp(np.array([-5.0])) == -5.0

    def test_scalar_input(self):
        assert logsumexp(3.5) == 3.5


class TestSoftmaxFromLog:
    def test_matches_handrolled_idiom_bitwise(self):
        logp = np.array([-1.0, -900.0, -3.5, 0.25])
        m = logp.max()
        p = np.exp(logp - m)
        p /= p.sum()
        assert np.array_equal(softmax_from_log(logp), p)

    def test_normalized(self):
        p = softmax_from_log(np.array([-1000.0, -1001.0, -1002.0]))
        assert np.isclose(p.sum(), 1.0)
        assert (p >= 0).all()

    def test_neginf_entries_get_zero_mass(self):
        p = softmax_from_log(np.array([0.0, -np.inf]))
        assert p[1] == 0.0 and np.isclose(p[0], 1.0)

    def test_all_neginf_raises(self):
        with pytest.raises(ValueError, match="zero total mass"):
            softmax_from_log(np.array([-np.inf, -np.inf]))

    def test_nan_raises(self):
        with pytest.raises(ValueError, match="NaN"):
            softmax_from_log(np.array([0.0, np.nan]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            softmax_from_log(np.zeros((2, 2)))


class TestSafeLog:
    def test_floor_applied_at_zero(self):
        out = safe_log(np.array([0.0, 1.0]))
        assert out[0] == np.log(LOG_FLOOR)
        assert out[1] == 0.0

    def test_matches_handrolled_idiom_bitwise(self):
        w = np.array([0.0, 1e-320, 0.3, 2.0])
        assert np.array_equal(safe_log(w), np.log(np.maximum(w, 1e-300)))

    def test_never_neginf_or_nan(self):
        out = safe_log(np.array([0.0, 1e-320, 1e300]))
        assert np.isfinite(out).all()


class TestCallSiteIntegration:
    def test_mixture_prior_zero_mass_tail_is_neginf(self):
        # A MixturePrior evaluated absurdly far from every center: the old
        # hand-rolled LSE produced NaN once every component underflowed.
        from repro.priors.deployment import MixturePrior

        prior = MixturePrior(np.array([[0.5, 0.5]]), sigma=1e-3)
        out = prior.log_density(0, np.array([[1e160, 1e160]]))
        assert not np.isnan(out).any()
        assert out[0] == -np.inf

    def test_mixture_prior_bit_identical_to_previous_code(self):
        from repro.priors.deployment import MixturePrior

        rng = np.random.default_rng(3)
        centers = rng.uniform(0, 1, size=(4, 2))
        prior = MixturePrior(centers, sigma=0.1)
        pts = rng.uniform(0, 1, size=(100, 2))
        d2 = (
            (pts[:, None, 0] - centers[None, :, 0]) ** 2
            + (pts[:, None, 1] - centers[None, :, 1]) ** 2
        )
        z = np.log(prior.weights)[None, :] - d2 / (2 * prior.sigma**2)
        m = z.max(axis=1, keepdims=True)
        old = m[:, 0] + np.log(np.exp(z - m).sum(axis=1))
        assert np.array_equal(prior.log_density(0, pts), old)
