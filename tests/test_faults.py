"""Tests for the fault-injection subsystem and graceful degradation.

Covers the :mod:`repro.faults` primitives (plans, logs, injectors), the
``FaultPlan.none()`` bit-identity guarantee, the belief-health guards in
:mod:`repro.core.health`, the distributed simulator's input validation and
faulted round loop, and the cross-worker determinism of faulted runs.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import GridBPConfig, GridBPLocalizer
from repro.core.health import (
    fallback_position,
    healthy_belief_rows,
    repair_nonfinite_messages,
    residuals_diverging,
)
from repro.faults import (
    FaultLog,
    FaultPlan,
    MessageFaultInjector,
    NodeOutage,
    degrade_measurements,
)
from repro.measurement import GaussianRanging, observe
from repro.network import NetworkConfig, UnitDiskRadio, generate_network
from repro.obs import Tracer
from repro.parallel import DistributedBPSimulator, run_trials


def _scenario(seed: int = 0, n_nodes: int = 16):
    net = generate_network(
        NetworkConfig(
            n_nodes=n_nodes,
            anchor_ratio=0.25,
            radio=UnitDiskRadio(0.45),
            require_connected=True,
        ),
        rng=seed,
    )
    return net, observe(net, GaussianRanging(0.05), rng=seed + 1)


_CFG = GridBPConfig(grid_size=8, max_iterations=12, tol=1e-7)


# ---------------------------------------------------------------------- #
class TestFaultPlan:
    def test_rates_validated(self):
        for f in (
            "message_drop_rate",
            "message_corrupt_rate",
            "message_delay_rate",
            "node_crash_rate",
            "anchor_failure_rate",
            "link_loss_rate",
            "outlier_fraction",
        ):
            with pytest.raises(ValueError, match=f):
                FaultPlan(**{f: 1.5})
            with pytest.raises(ValueError, match=f):
                FaultPlan(**{f: -0.1})

    def test_other_fields_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=-1)
        with pytest.raises(ValueError):
            FaultPlan(max_delay_rounds=0)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_sigma=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(outlier_bias_ratio=0.0)
        with pytest.raises(TypeError):
            FaultPlan(node_outages=("node-3",))

    def test_outage_windows(self):
        o = NodeOutage(node=3, start_round=2, end_round=5)
        assert [o.down_at(r) for r in range(1, 7)] == [
            False, True, True, True, False, False,
        ]
        assert NodeOutage(node=1).down_at(10**6)  # permanent crash
        with pytest.raises(ValueError):
            NodeOutage(node=1, start_round=0)
        with pytest.raises(ValueError):
            NodeOutage(node=1, start_round=3, end_round=3)

    def test_enabled_properties(self):
        assert not FaultPlan.none().enabled
        assert FaultPlan.message_loss(0.2).affects_messages
        assert not FaultPlan.message_loss(0.2).affects_measurements
        assert FaultPlan(link_loss_rate=0.1).affects_measurements
        assert FaultPlan(node_outages=(NodeOutage(node=1),)).affects_messages

    def test_resolve_outages_deterministic(self):
        plan = FaultPlan(seed=4, node_crash_rate=0.5, crash_horizon=6)
        a = plan.resolve_outages(range(10))
        b = plan.resolve_outages(range(10))
        assert a == b
        assert 0 < len(a) < 10
        assert all(1 <= o.start_round <= 6 for o in a)

    def test_explicit_outage_suppresses_random_crash(self):
        explicit = NodeOutage(node=2, start_round=1, end_round=3)
        plan = FaultPlan(
            seed=4, node_crash_rate=1.0, node_outages=(explicit,)
        )
        out = plan.resolve_outages(range(4))
        assert sum(o.node == 2 for o in out) == 1
        assert explicit in out

    def test_round_streams_independent(self):
        plan = FaultPlan(seed=1, message_drop_rate=0.5)
        a = plan.round_stream(3).random(4)
        b = plan.round_stream(4).random(4)
        assert not np.allclose(a, b)
        assert np.allclose(a, plan.round_stream(3).random(4))


class TestFaultLog:
    def test_counters_and_rounds(self):
        log = FaultLog()
        log.record_round(1, messages_dropped=2, messages_corrupted=0)
        log.record_round(2)  # all-quiet round: not recorded
        log.record_round(3, messages_dropped=1)
        assert log.counters == {"messages_dropped": 3}
        assert [r["round"] for r in log.rounds] == [1, 3]
        assert log.total_events == 3
        d = log.to_dict()
        assert d["counters"]["messages_dropped"] == 3
        assert "messages_dropped=3" in log.summary()
        assert FaultLog().summary() == "no faults injected"


# ---------------------------------------------------------------------- #
class TestMessageFaultInjector:
    def _messages(self, n: int = 20, k: int = 4):
        rng = np.random.default_rng(0)
        out = []
        for i in range(n):
            m = rng.random(k)
            out.append((i % 5, (i + 1) % 5, m / m.sum()))
        return out

    def test_empty_plan_is_identity(self):
        inj = MessageFaultInjector(FaultPlan.none())
        msgs = self._messages()
        delivered, record = inj.process_round(1, msgs)
        assert delivered == msgs
        assert inj.log.total_events == 0
        assert record == {"round": 1}

    def test_drops_are_deterministic(self):
        plan = FaultPlan(seed=7, message_drop_rate=0.4)
        a = MessageFaultInjector(plan).process_round(1, self._messages())[0]
        b = MessageFaultInjector(plan).process_round(1, self._messages())[0]
        assert len(a) == len(b) < 20
        for (s1, d1, m1), (s2, d2, m2) in zip(a, b):
            assert (s1, d1) == (s2, d2)
            assert np.array_equal(m1, m2)

    def test_delay_delivers_later(self):
        plan = FaultPlan(seed=1, message_delay_rate=1.0, max_delay_rounds=2)
        inj = MessageFaultInjector(plan)
        msgs = self._messages(6)
        delivered, record = inj.process_round(1, msgs)
        assert delivered == []
        assert record["messages_delayed"] == 6
        assert inj.n_in_flight == 6
        late = []
        for r in (2, 3):
            got, _ = inj.process_round(r, [])
            late.extend(got)
        assert inj.n_in_flight == 0
        assert len(late) == 6
        assert inj.log.counters["messages_arrived_late"] == 6

    def test_corruption_keeps_distribution(self):
        plan = FaultPlan(seed=2, message_corrupt_rate=1.0, corrupt_sigma=2.0)
        inj = MessageFaultInjector(plan)
        msgs = self._messages(8)
        delivered, record = inj.process_round(1, msgs)
        assert record["messages_corrupted"] == 8
        for (_, _, orig), (_, _, got) in zip(msgs, delivered):
            assert not np.allclose(orig, got)
            assert np.isclose(got.sum(), 1.0)
            assert (got >= 0).all()

    def test_down_nodes_send_and_receive_nothing(self):
        plan = FaultPlan(node_outages=(NodeOutage(node=0, start_round=1),))
        inj = MessageFaultInjector(plan)
        inj.resolve_outages([0, 1, 2])
        assert inj.node_down(0, 5) and not inj.node_down(1, 5)
        m = np.full(4, 0.25)
        delivered, record = inj.process_round(
            1, [(0, 1, m), (1, 0, m), (1, 2, m)]
        )
        assert [(s, d) for s, d, _ in delivered] == [(1, 2)]
        assert record["sender_down"] == 1
        assert record["messages_dropped"] == 1  # receiver down


class TestDegradeMeasurements:
    def test_no_faults_returns_same_object(self):
        _, ms = _scenario()
        out, log = degrade_measurements(ms, FaultPlan.none())
        assert out is ms
        assert log.total_events == 0

    def test_link_loss_symmetric_and_seeded(self):
        _, ms = _scenario()
        plan = FaultPlan(seed=3, link_loss_rate=0.4)
        a, log = degrade_measurements(ms, plan)
        b, _ = degrade_measurements(ms, plan)
        assert np.array_equal(a.adjacency, b.adjacency)
        assert np.array_equal(a.adjacency, a.adjacency.T)
        assert log.counters["links_lost"] > 0
        assert a.adjacency.sum() < ms.adjacency.sum()
        # lost links also lose their range observations
        gone = ms.adjacency & ~a.adjacency
        assert np.isnan(a.observed_distances[gone]).all()

    def test_anchor_failure_demotes_and_silences(self):
        _, ms = _scenario()
        victim = int(ms.anchor_ids[0])
        plan = FaultPlan(failed_anchors=(victim,))
        out, log = degrade_measurements(ms, plan)
        assert not out.anchor_mask[victim]
        assert not out.adjacency[victim].any()
        assert np.isnan(out.anchor_positions_full[victim]).all()
        assert log.counters["anchors_failed"] == 1
        assert ms.anchor_mask[victim]  # input untouched

    def test_failed_anchor_must_be_anchor(self):
        _, ms = _scenario()
        victim = int(ms.unknown_ids[0])
        with pytest.raises(ValueError, match="non-anchor"):
            degrade_measurements(ms, FaultPlan(failed_anchors=(victim,)))

    def test_outliers_bias_surviving_links(self):
        _, ms = _scenario()
        plan = FaultPlan(seed=5, outlier_fraction=0.5, outlier_bias_ratio=1.0)
        out, log = degrade_measurements(ms, plan)
        assert log.counters["outlier_links"] > 0
        diff = out.observed_distances - ms.observed_distances
        hit = np.nan_to_num(diff) > 0
        assert hit.sum() == 2 * log.counters["outlier_links"]  # both directions
        assert np.allclose(diff[hit], ms.radio_range)

    def test_include_crashes_flag(self):
        _, ms = _scenario()
        plan = FaultPlan(seed=6, node_crash_rate=0.9)
        static, log = degrade_measurements(ms, plan)
        assert log.counters["nodes_crashed"] > 0
        dynamic, log2 = degrade_measurements(ms, plan, include_crashes=False)
        assert dynamic is ms  # crash-only plan: nothing static to apply
        assert "nodes_crashed" not in log2.counters


# ---------------------------------------------------------------------- #
class TestHealthGuards:
    def test_healthy_belief_rows(self):
        b = np.full((3, 4), 0.25)
        b[1, 0] = np.nan
        b[2] = 0.0
        assert healthy_belief_rows(b).tolist() == [True, False, False]

    def test_repair_nonfinite_messages(self):
        msgs = np.full((3, 4), 0.25)
        msgs[1, 2] = np.inf
        n = repair_nonfinite_messages(msgs)
        assert n == 1
        assert np.allclose(msgs[1], 0.25)
        assert repair_nonfinite_messages(msgs) == 0

    def test_residuals_diverging_is_conservative(self):
        assert not residuals_diverging([])
        assert not residuals_diverging([1.0, 0.5, 0.3, 0.2])  # converging
        assert not residuals_diverging([0.1, 0.2, 0.3])  # too short
        # growing but tiny: below the absolute floor
        assert not residuals_diverging([1e-9, 1e-8, 2e-8, 4e-8])
        assert residuals_diverging([1e-4, 1e-3, 0.1, 0.5, 1.0])

    def test_fallback_position_prefers_heard_anchors(self):
        _, ms = _scenario()
        u = int(ms.unknown_ids[0])
        heard = [a for a in ms.anchor_ids if ms.adjacency[u, a]]
        pos = fallback_position(ms, u)
        if heard:
            expect = ms.anchor_positions_full[heard].mean(axis=0)
            assert np.allclose(pos, expect)
        assert np.isfinite(pos).all()

    def test_fallback_position_field_center_when_deaf(self):
        _, ms = _scenario()
        adj = ms.adjacency.copy()
        u = int(ms.unknown_ids[0])
        adj[u, :] = adj[:, u] = False
        deaf = dataclasses.replace(ms, adjacency=adj)
        assert np.allclose(
            fallback_position(deaf, u), [ms.width / 2, ms.height / 2]
        )

    def test_grid_bp_health_checks_do_not_change_healthy_runs(self):
        _, ms = _scenario()
        on = GridBPLocalizer(config=_CFG).localize(ms)
        off = GridBPLocalizer(
            config=dataclasses.replace(_CFG, health_checks=False)
        ).localize(ms)
        assert np.array_equal(on.estimates, off.estimates)
        assert not on.fallback_mask.any()


# ---------------------------------------------------------------------- #
class TestSimulatorValidation:
    def test_rejects_non_measurement_set(self):
        with pytest.raises(TypeError, match="MeasurementSet"):
            DistributedBPSimulator(config=_CFG).run("network")

    def test_rejects_bad_faults_type(self):
        with pytest.raises(TypeError, match="FaultPlan"):
            DistributedBPSimulator(config=_CFG, faults={"drop": 0.5})

    def test_rejects_asymmetric_adjacency(self):
        _, ms = _scenario()
        bad = dataclasses.replace(ms, adjacency=ms.adjacency.copy())
        bad.adjacency[0, 1] = not bad.adjacency[1, 0]
        with pytest.raises(ValueError, match="symmetric"):
            DistributedBPSimulator(config=_CFG).run(bad)

    def test_rejects_all_anchor_network(self):
        net, ms = _scenario()
        allanchor = dataclasses.replace(
            ms,
            anchor_mask=np.ones(ms.n_nodes, dtype=bool),
            anchor_positions_full=net.positions.copy(),
        )
        with pytest.raises(ValueError, match="no unknown nodes"):
            DistributedBPSimulator(config=_CFG).run(allanchor)


class TestFaultedSimulator:
    def test_none_plan_bit_identical(self):
        _, ms = _scenario()
        r0, s0 = DistributedBPSimulator(config=_CFG).run(ms)
        r1, s1 = DistributedBPSimulator(config=_CFG, faults=FaultPlan.none()).run(ms)
        assert np.array_equal(r0.estimates, r1.estimates)
        for u in r0.extras["beliefs"]:
            assert np.array_equal(
                r0.extras["beliefs"][u], r1.extras["beliefs"][u]
            )
        assert s0 == s1
        assert "fault_log" not in r1.extras
        assert not r1.fallback_mask.any()

    def test_message_loss_deterministic_and_logged(self):
        _, ms = _scenario()
        plan = FaultPlan.message_loss(0.3, seed=5)
        ra, sa = DistributedBPSimulator(config=_CFG, faults=plan).run(ms)
        rb, sb = DistributedBPSimulator(config=_CFG, faults=plan).run(ms)
        assert np.array_equal(ra.estimates, rb.estimates)
        assert sa == sb
        dropped = sum(s.dropped for s in sa)
        assert dropped > 0
        counters = ra.extras["fault_log"]["messages"]["counters"]
        assert counters["messages_dropped"] == dropped
        # fewer deliveries than the fault-free run would make
        assert all(s.messages + s.dropped >= s.messages for s in sa)

    def test_loss_changes_results(self):
        _, ms = _scenario()
        clean, _ = DistributedBPSimulator(config=_CFG).run(ms)
        lossy, _ = DistributedBPSimulator(
            config=_CFG, faults=FaultPlan.message_loss(0.5, seed=1)
        ).run(ms)
        assert not np.array_equal(clean.estimates, lossy.estimates)
        assert np.isfinite(lossy.estimates[lossy.localized_mask]).all()

    def test_crashed_node_sends_nothing(self):
        _, ms = _scenario()
        victim = int(ms.unknown_ids[0])
        plan = FaultPlan(node_outages=(NodeOutage(node=victim, start_round=1),))
        result, stats = DistributedBPSimulator(config=_CFG, faults=plan).run(ms)
        clean, cstats = DistributedBPSimulator(config=_CFG).run(ms)
        assert stats[0].messages < cstats[0].messages
        # the victim still gets an estimate (stale/prior belief)
        assert result.localized_mask[victim]

    def test_fault_events_reach_tracer(self):
        _, ms = _scenario()
        tracer = Tracer()
        plan = FaultPlan(seed=2, message_drop_rate=0.3, message_corrupt_rate=0.2)
        result, _ = DistributedBPSimulator(
            config=_CFG, faults=plan, tracer=tracer
        ).run(ms)
        snap = tracer.snapshot(include_timings=False)
        assert snap["counters"]["faults.messages_dropped"] > 0
        assert snap["counters"]["faults.messages_corrupted"] > 0
        assert result.telemetry is not None

    def test_delays_postpone_convergence_claim(self):
        _, ms = _scenario()
        plan = FaultPlan(seed=3, message_delay_rate=0.4, max_delay_rounds=3)
        result, stats = DistributedBPSimulator(config=_CFG, faults=plan).run(ms)
        counters = result.extras["fault_log"]["messages"]["counters"]
        assert counters["messages_delayed"] > 0
        assert counters["messages_arrived_late"] > 0

    def test_measurement_faults_apply_in_simulator(self):
        _, ms = _scenario()
        victim = int(ms.anchor_ids[0])
        plan = FaultPlan(failed_anchors=(victim,))
        result, _ = DistributedBPSimulator(config=_CFG, faults=plan).run(ms)
        meas = result.extras["fault_log"]["measurements"]["counters"]
        assert meas["anchors_failed"] == 1
        # the demoted anchor is now estimated like any unknown
        assert result.localized_mask[victim]
        assert np.isfinite(result.estimates[victim]).all()


# ---------------------------------------------------------------------- #
def _faulted_trial(seed: int) -> dict:
    """Picklable trial: faulted distributed run under a tracer.

    Returns estimates, final beliefs, and the deterministic part of the
    obs trace so worker counts can be compared bit-for-bit.
    """
    net = generate_network(
        NetworkConfig(
            n_nodes=14,
            anchor_ratio=0.3,
            radio=UnitDiskRadio(0.5),
            require_connected=True,
        ),
        rng=seed,
    )
    ms = observe(net, GaussianRanging(0.05), rng=seed + 1)
    tracer = Tracer()
    sim = DistributedBPSimulator(
        config=GridBPConfig(grid_size=6, max_iterations=6, tol=1e-9),
        faults=FaultPlan(
            seed=seed, message_drop_rate=0.25, message_corrupt_rate=0.1
        ),
        tracer=tracer,
    )
    result, stats = sim.run(ms)
    return {
        "estimates": result.estimates.tolist(),
        "beliefs": {u: b.tolist() for u, b in result.extras["beliefs"].items()},
        "fault_log": result.extras["fault_log"]["messages"],
        "trace": tracer.snapshot(include_timings=False),
        "rounds": [(s.messages, s.dropped, s.corrupted) for s in stats],
    }


class TestFaultDeterminismAcrossWorkers:
    def test_same_seed_same_plan_same_everything_serial(self):
        a = run_trials(_faulted_trial, 2, seed=11, n_workers=1)
        b = run_trials(_faulted_trial, 2, seed=11, n_workers=1)
        assert a == b

    @pytest.mark.slow
    def test_workers_do_not_change_faulted_results(self):
        serial = run_trials(_faulted_trial, 2, seed=11, n_workers=1)
        parallel = run_trials(_faulted_trial, 2, seed=11, n_workers=2)
        assert serial == parallel


class TestDelayAccounting:
    """End-of-run conservation of the delay ledger (satellite of the
    checkpoint PR): every delayed message is delivered late, expired
    against a downed receiver, or reported still in flight."""

    @staticmethod
    def _messages(n=4):
        return [(i, i + 1, np.full(3, float(i))) for i in range(n)]

    def test_finalize_reports_in_flight_messages(self):
        plan = FaultPlan(seed=5, message_delay_rate=1.0, max_delay_rounds=6)
        inj = MessageFaultInjector(plan)
        _, record = inj.process_round(1, self._messages(4))
        assert record["messages_delayed"] == 4
        assert inj.n_in_flight == 4
        assert inj.finalize() == 4
        assert inj.log.counters["messages_in_flight_at_end"] == 4
        # idempotent: closing the books twice adds nothing
        assert inj.finalize() == 4
        assert inj.log.counters["messages_in_flight_at_end"] == 4
        from repro.audit.invariants import check_delay_conservation

        assert check_delay_conservation(inj.log.counters) == []

    def test_finalize_with_empty_queue_records_nothing(self):
        inj = MessageFaultInjector(FaultPlan(seed=5, message_drop_rate=0.5))
        inj.process_round(1, self._messages(4))
        assert inj.finalize() == 0
        assert "messages_in_flight_at_end" not in inj.log.counters

    def test_expired_delivery_to_downed_receiver_counted(self):
        plan = FaultPlan(
            seed=5,
            message_delay_rate=1.0,
            max_delay_rounds=1,
            node_outages=(NodeOutage(node=1, start_round=2),),
        )
        inj = MessageFaultInjector(plan)
        inj.resolve_outages([0, 1, 2])
        _, record = inj.process_round(1, [(0, 1, np.ones(3))])
        assert record["messages_delayed"] == 1
        # due in round 2, but node 1 is down by then: the message expires
        delivered, record = inj.process_round(2, [])
        assert delivered == []
        assert record["messages_delayed_expired"] == 1
        assert inj.n_in_flight == 0
        assert inj.finalize() == 0
        counters = inj.log.counters
        assert counters["messages_delayed_expired"] == 1
        from repro.audit.invariants import check_delay_conservation

        assert check_delay_conservation(counters) == []

    def test_simulator_finalizes_delay_ledger(self):
        # few iterations + long delays guarantee messages are still in
        # flight when the round loop ends
        _, ms = _scenario()
        plan = FaultPlan(seed=9, message_delay_rate=0.8, max_delay_rounds=10)
        cfg = dataclasses.replace(_CFG, max_iterations=3)
        result, _ = DistributedBPSimulator(config=cfg, faults=plan).run(ms)
        counters = result.extras["fault_log"]["messages"]["counters"]
        assert counters["messages_delayed"] > 0
        assert counters.get("messages_in_flight_at_end", 0) > 0
        assert counters["messages_delayed"] == (
            counters.get("messages_arrived_late", 0)
            + counters.get("messages_delayed_expired", 0)
            + counters["messages_in_flight_at_end"]
        )
