"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.nodes == 100
        assert args.anchor_ratio == 0.1
        assert args.command == "run"

    def test_sweep_requires_param_and_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])
        args = build_parser().parse_args(
            ["sweep", "--param", "anchor_ratio", "--values", "0.1,0.2"]
        )
        assert args.param == "anchor_ratio"

    def test_sweep_rejects_unknown_param(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--param", "color", "--values", "1"]
            )


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "bn-pk" in out and "ICPP 2007" in out

    def test_run_small(self, capsys):
        rc = main(
            [
                "run",
                "--nodes", "40",
                "--trials", "1",
                "--methods", "bn,centroid",
                "--grid-size", "10",
                "--seed", "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bn" in out and "centroid" in out and "mean/r" in out

    def test_run_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["run", "--methods", "oracle", "--trials", "1"])

    def test_run_empty_methods(self):
        with pytest.raises(SystemExit):
            main(["run", "--methods", ",", "--trials", "1"])

    def test_sweep_small(self, capsys):
        rc = main(
            [
                "sweep",
                "--param", "anchor_ratio",
                "--values", "0.15,0.3",
                "--nodes", "40",
                "--trials", "1",
                "--methods", "bn",
                "--grid-size", "10",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "anchor_ratio" in out
        assert "0.150" in out and "0.300" in out

    def test_sweep_bad_values(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep",
                    "--param", "anchor_ratio",
                    "--values", "a,b",
                    "--methods", "bn",
                ]
            )

    def test_sweep_empty_values(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep",
                    "--param", "anchor_ratio",
                    "--values", ",",
                    "--methods", "bn",
                ]
            )

    def test_pk_error_zero_disables_prior(self, capsys):
        rc = main(
            [
                "run",
                "--nodes", "40",
                "--trials", "1",
                "--methods", "bn-pk",
                "--pk-error", "0",
                "--grid-size", "10",
            ]
        )
        assert rc == 0

    def test_nlos_option(self, capsys):
        rc = main(
            [
                "run",
                "--nodes", "40",
                "--trials", "1",
                "--methods", "bn",
                "--nlos-fraction", "0.3",
                "--grid-size", "10",
            ]
        )
        assert rc == 0

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.method == "grid-bp"
        assert args.iterations == 15
        assert args.json is False
        assert args.output is None

    def test_trace_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--method", "dv-hop"])

    _TRACE_ARGS = [
        "trace",
        "--nodes", "40",
        "--grid-size", "10",
        "--iterations", "4",
        "--seed", "2",
    ]

    def test_trace_table_output(self, capsys):
        assert main(self._TRACE_ARGS) == 0
        out = capsys.readouterr().out
        assert "trace: grid-bp" in out
        assert "residual" in out and "messages_cum" in out
        assert "counters:" in out and "timers:" in out
        assert "final mean error / r" in out

    def test_trace_json_output(self, capsys):
        assert main(self._TRACE_ARGS + ["--json"]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert trace["meta"]["method"] == "grid-bp"
        assert len(trace["iterations"]) >= 1
        assert all(rec["residual"] >= 0 for rec in trace["iterations"])

    def test_trace_json_reproducible_across_invocations(self, capsys):
        main(self._TRACE_ARGS + ["--json"])
        first = json.loads(capsys.readouterr().out)
        main(self._TRACE_ARGS + ["--json"])
        second = json.loads(capsys.readouterr().out)
        first.pop("timers"), second.pop("timers")  # wall clock differs
        assert first == second

    def test_trace_output_file(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(self._TRACE_ARGS + ["--output", str(path)]) == 0
        on_disk = json.loads(path.read_text())
        assert on_disk["meta"]["method"] == "grid-bp"
        # table still printed alongside the file
        assert "trace: grid-bp" in capsys.readouterr().out

    def test_trace_nbp(self, capsys):
        rc = main(
            [
                "trace",
                "--nodes", "30",
                "--method", "nbp",
                "--iterations", "2",
                "--seed", "4",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace: nbp" in out

    def test_trace_nbp_rejects_rangefree(self):
        # NBP needs distances; connectivity-only observations must exit
        # with the CLI's clean error, not a raw traceback
        with pytest.raises(SystemExit, match="error:"):
            main(
                [
                    "trace",
                    "--nodes", "30",
                    "--radio-range", "0.35",
                    "--method", "nbp",
                    "--ranging", "none",
                    "--iterations", "2",
                ]
            )

    def test_run_with_map(self, capsys):
        rc = main(
            [
                "run",
                "--nodes", "35",
                "--trials", "1",
                "--methods", "bn",
                "--grid-size", "10",
                "--map",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "A=anchor" in out
        assert "mean/r" in out


@pytest.mark.ckpt
class TestCheckpointResume:
    """``--checkpoint`` on run/sweep plus the ``resume`` subcommand."""

    _RUN = [
        "run",
        "--nodes", "40",
        "--radio-range", "0.35",
        "--trials", "2",
        "--methods", "bn,centroid",
        "--grid-size", "10",
        "--seed", "3",
    ]
    _SWEEP = [
        "sweep",
        "--param", "anchor_ratio",
        "--values", "0.15,0.3",
        "--nodes", "40",
        "--trials", "1",
        "--methods", "bn",
        "--grid-size", "10",
        "--seed", "2",
    ]

    @staticmethod
    def _data_rows(out):
        """Table rows (method/value rows), ignoring titles and rules."""
        return [
            line for line in out.splitlines()
            if line.strip().startswith(("bn", "centroid", "0."))
        ]

    def test_parser_accepts_checkpoint(self):
        args = build_parser().parse_args(["run", "--checkpoint", "l.jsonl"])
        assert args.checkpoint == "l.jsonl"
        assert build_parser().parse_args(["run"]).checkpoint is None
        args = build_parser().parse_args(["resume", "l.jsonl", "--status"])
        assert args.ledger == "l.jsonl" and args.status is True

    def test_run_checkpoint_status_and_noop_resume(self, tmp_path, capsys):
        ledger = tmp_path / "run.jsonl"
        assert main(self._RUN + ["--checkpoint", str(ledger)]) == 0
        original = capsys.readouterr().out
        assert ledger.exists()

        assert main(["resume", str(ledger), "--status"]) == 0
        status = capsys.readouterr().out
        assert "run kind: evaluate" in status
        assert "progress: 2/2 cells done (100%)" in status
        assert "resuming re-runs nothing" in status

        before = ledger.read_bytes()
        assert main(["resume", str(ledger)]) == 0
        resumed = capsys.readouterr().out
        assert ledger.read_bytes() == before  # zero trials re-recorded
        # replayed statistics (runtimes included — they come from the
        # ledger) render identically to the original run's table
        assert self._data_rows(resumed) == self._data_rows(original)

    def test_sweep_checkpoint_resume_continues(self, tmp_path, capsys):
        ledger = tmp_path / "sweep.jsonl"
        assert main(self._SWEEP + ["--checkpoint", str(ledger)]) == 0
        original = capsys.readouterr().out

        assert main(["resume", str(ledger), "--status"]) == 0
        status = capsys.readouterr().out
        assert "run kind: sweep" in status
        assert "sweep: anchor_ratio" in status
        assert "progress: 2/2 cells done (100%)" in status

        assert main(["resume", str(ledger)]) == 0
        resumed = capsys.readouterr().out
        assert self._data_rows(resumed) == self._data_rows(original)

    def test_checkpoint_mismatch_is_clean_error(self, tmp_path):
        ledger = tmp_path / "run.jsonl"
        assert main(self._RUN + ["--checkpoint", str(ledger)]) == 0
        changed = [a if a != "2" else "3" for a in self._RUN]
        with pytest.raises(SystemExit, match="different run"):
            main(changed + ["--checkpoint", str(ledger)])

    def test_resume_missing_ledger_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["resume", str(tmp_path / "nope.jsonl")])

    def test_resume_rejects_foreign_ledger_kind(self, tmp_path):
        from repro.ckpt import Checkpoint

        ledger = tmp_path / "trials.jsonl"
        Checkpoint(ledger).open(
            {"kind": "trials", "n_trials": 2, "seed": {"type": "int", "value": 0}}
        ).close()
        with pytest.raises(SystemExit, match="cannot resume a 'trials' ledger"):
            main(["resume", str(ledger)])

    def test_resume_rejects_garbage_file(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("deadbeef {\"kind\":\"trial\"}\n")
        with pytest.warns(RuntimeWarning, match="quarantining"):
            with pytest.raises(SystemExit, match="error:"):
                main(["resume", str(bad)])
