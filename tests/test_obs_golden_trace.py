"""Golden-trace regression tests.

A small fixed-seed network is localized with GridBP and NBP; the solvers'
deterministic trace exports (per-iteration residuals, message counts,
counters) and final estimates are snapshotted under ``tests/data/``.  Any
refactor that silently changes inference behavior — message math, trace
semantics, or RNG consumption order — fails these tests loudly.

Grid BP consumes no randomness, so its trace and estimates must match the
golden file **exactly**; NBP is particle-based, so its residuals and
estimates are compared under a tight tolerance while its integer message
counts stay exact.

Regenerate the golden files (after an *intentional* behavior change) with::

    PYTHONPATH=src:tests python -m test_obs_golden_trace
"""

import dataclasses as dc
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    CooperativeLocalizer,
    GridBPConfig,
    GridBPLocalizer,
    NBPConfig,
    NBPLocalizer,
)
from repro.measurement import GaussianRanging, observe
from repro.network import NetworkConfig, UnitDiskRadio, generate_network
from repro.obs import Tracer

DATA_DIR = Path(__file__).parent / "data"
GRID_GOLDEN = DATA_DIR / "golden_grid_trace.json"
GRID_BATCHED_GOLDEN = DATA_DIR / "golden_grid_trace_batched.json"
NBP_GOLDEN = DATA_DIR / "golden_nbp_trace.json"

GRID_CFG = GridBPConfig(grid_size=10, max_iterations=8, tol=1e-6)
NBP_CFG = NBPConfig(n_particles=60, n_iterations=4)
NBP_RUN_SEED = 13


def _scenario():
    net = generate_network(
        NetworkConfig(
            n_nodes=25,
            anchor_ratio=0.2,
            radio=UnitDiskRadio(0.35),
            require_connected=True,
        ),
        rng=11,
    )
    ms = observe(net, GaussianRanging(0.02), rng=12)
    return net, ms


def _grid_run(tracer=None):
    _, ms = _scenario()
    loc = GridBPLocalizer(config=GRID_CFG, tracer=tracer)
    return loc.localize(ms)


def _grid_batched_run(tracer=None):
    _, ms = _scenario()
    cfg = dc.replace(GRID_CFG, backend="batched")
    loc = GridBPLocalizer(config=cfg, tracer=tracer)
    return loc.localize(ms)


def _nbp_run(tracer=None):
    _, ms = _scenario()
    loc = NBPLocalizer(config=NBP_CFG, tracer=tracer)
    return loc.localize(ms, rng=NBP_RUN_SEED)


def _export(result) -> dict:
    """Golden payload: the deterministic trace section + final estimates."""
    return {
        "trace": {
            k: v
            for k, v in result.telemetry.items()
            if k != "timers"  # wall clock — the only non-deterministic part
        },
        "estimates": result.estimates.tolist(),
    }


def regenerate() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    runs = (
        (GRID_GOLDEN, _grid_run),
        (GRID_BATCHED_GOLDEN, _grid_batched_run),
        (NBP_GOLDEN, _nbp_run),
    )
    for path, run in runs:
        payload = _export(run(tracer=Tracer()))
        path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        print(f"wrote {path}")


class TestGridGolden:
    @pytest.fixture(scope="class")
    def run(self):
        return _grid_run(tracer=Tracer())

    def test_trace_matches_golden_exactly(self, run):
        golden = json.loads(GRID_GOLDEN.read_text())
        # JSON floats round-trip exactly, so == is bitwise on every
        # residual; grid BP consumes no randomness and must not drift.
        assert _export(run)["trace"] == golden["trace"]

    def test_estimates_match_golden_exactly(self, run):
        golden = json.loads(GRID_GOLDEN.read_text())
        assert run.estimates.tolist() == golden["estimates"]

    def test_trace_is_json_serializable(self, run):
        assert json.loads(json.dumps(run.telemetry)) == run.telemetry


class TestGridBatchedGolden:
    """The batched kernel backend against its own golden file — and
    against the per-trial golden, from which it may differ **only** in
    the documented batch counter (``meta.backend``).  Any other delta
    means the batched kernel drifted from the reference arithmetic."""

    @pytest.fixture(scope="class")
    def run(self):
        return _grid_batched_run(tracer=Tracer())

    def test_trace_matches_batched_golden_exactly(self, run):
        golden = json.loads(GRID_BATCHED_GOLDEN.read_text())
        assert _export(run)["trace"] == golden["trace"]

    def test_estimates_match_batched_golden_exactly(self, run):
        golden = json.loads(GRID_BATCHED_GOLDEN.read_text())
        assert run.estimates.tolist() == golden["estimates"]

    def test_differs_from_per_trial_golden_only_in_backend_field(self):
        ref = json.loads(GRID_GOLDEN.read_text())
        bat = json.loads(GRID_BATCHED_GOLDEN.read_text())
        assert ref["trace"]["meta"]["backend"] == "reference"
        assert bat["trace"]["meta"]["backend"] == "batched"
        for payload in (ref, bat):
            payload["trace"]["meta"].pop("backend")
        assert ref == bat


class TestNBPGolden:
    @pytest.fixture(scope="class")
    def run(self):
        return _nbp_run(tracer=Tracer())

    def test_trace_matches_golden_within_tolerance(self, run):
        golden = json.loads(NBP_GOLDEN.read_text())["trace"]
        trace = _export(run)["trace"]
        assert trace["counters"]["messages"] == golden["counters"]["messages"]
        got = [r["residual"] for r in trace["iterations"]]
        want = [r["residual"] for r in golden["iterations"]]
        np.testing.assert_allclose(got, want, rtol=1e-7, atol=1e-12)
        for got_rec, want_rec in zip(trace["iterations"], golden["iterations"]):
            assert got_rec["messages"] == want_rec["messages"]
            assert got_rec["messages_cum"] == want_rec["messages_cum"]

    def test_estimates_match_golden_within_tolerance(self, run):
        golden = json.loads(NBP_GOLDEN.read_text())
        np.testing.assert_allclose(
            run.estimates, np.asarray(golden["estimates"]), rtol=1e-7, atol=1e-12
        )


class TestSeedStability:
    def test_grid_trace_reproduced_exactly_across_runs(self):
        a = _grid_run(tracer=Tracer())
        b = _grid_run(tracer=Tracer())
        assert _export(a) == _export(b)

    def test_nbp_trace_reproduced_exactly_across_runs(self):
        # Same process, same seed: the particle path is identical, so even
        # the nominally tolerance-compared NBP trace reproduces exactly.
        a = _nbp_run(tracer=Tracer())
        b = _nbp_run(tracer=Tracer())
        assert _export(a) == _export(b)

    def test_cooperative_localizer_run_trace_reproducible(self):
        # The acceptance-criterion path: facade + Tracer + one seed.
        net, _ = _scenario()
        ranging = GaussianRanging(0.02)

        def traced_run():
            loc = CooperativeLocalizer(
                "grid-bp", grid_config=GRID_CFG, tracer=Tracer()
            )
            return loc.run(net, ranging, rng=5)

        a, b = traced_run(), traced_run()
        assert a.telemetry is not None
        assert json.loads(json.dumps(a.telemetry)) == a.telemetry
        res_a = [r["residual"] for r in a.telemetry["iterations"]]
        res_b = [r["residual"] for r in b.telemetry["iterations"]]
        assert res_a == res_b


class TestNullTracerBitIdentical:
    def test_grid_beliefs_identical_with_and_without_tracer(self):
        untraced = _grid_run()
        traced = _grid_run(tracer=Tracer())
        assert untraced.telemetry is None
        for u, belief in untraced.extras["beliefs"].items():
            assert np.array_equal(belief, traced.extras["beliefs"][u])
        assert np.array_equal(untraced.estimates, traced.estimates)
        assert untraced.n_iterations == traced.n_iterations
        assert untraced.messages_sent == traced.messages_sent

    def test_nbp_results_identical_with_and_without_tracer(self):
        untraced = _nbp_run()
        traced = _nbp_run(tracer=Tracer())
        assert untraced.telemetry is None
        assert np.array_equal(untraced.estimates, traced.estimates)
        for u, cloud in untraced.extras["particles"].items():
            assert np.array_equal(cloud, traced.extras["particles"][u])


if __name__ == "__main__":
    regenerate()
