"""Line-coverage floor for the repro.obs instrumentation layer.

The container has no coverage plugin installed, so this uses the stdlib
:mod:`trace` module directly: an exercise function drives the whole
``repro.obs`` API (happy paths and error paths) under ``trace.Trace``,
executed lines are read from its counts, and the executable-line universe
is derived from the modules' own function code objects via
``co_lines()``.  The suite fails if either module drops below 90% line
coverage — the ISSUE's acceptance floor for the subsystem.

Run it alone with::

    PYTHONPATH=src python -m pytest tests/test_obs_coverage.py -q
"""

import inspect
import json
import trace as trace_mod
import types

import pytest

from repro.obs import report as report_module
from repro.obs import tracer as tracer_module
from repro.obs import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Tracer,
    format_trace_table,
    merge_traces,
    reservoir_summary,
    trace_summary,
)

COVERAGE_FLOOR = 0.90


# --------------------------------------------------------------------- #
# Executable-line discovery
# --------------------------------------------------------------------- #
def _code_objects(module: types.ModuleType):
    """Every function/method code object defined in *module*, recursively
    including nested code objects (comprehensions, closures)."""
    roots = []
    for obj in vars(module).values():
        if inspect.isfunction(obj) and obj.__module__ == module.__name__:
            roots.append(obj.__code__)
        elif inspect.isclass(obj) and obj.__module__ == module.__name__:
            for attr in vars(obj).values():
                fn = attr.__func__ if isinstance(attr, (staticmethod, classmethod)) else attr
                if inspect.isfunction(fn):
                    roots.append(fn.__code__)
    stack, seen = list(roots), set()
    while stack:
        code = stack.pop()
        if code in seen:
            continue
        seen.add(code)
        yield code
        for const in code.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)


def _executable_lines(module: types.ModuleType) -> set:
    lines: set = set()
    for code in _code_objects(module):
        for _start, _end, lineno in code.co_lines():
            # co_firstlineno is the `def` statement itself — present in
            # co_lines() but never hit by the trace hook at call time.
            if lineno is not None and lineno != code.co_firstlineno:
                lines.add(lineno)
    return lines


# --------------------------------------------------------------------- #
# The exercise: every public entry point, happy and error paths
# --------------------------------------------------------------------- #
def _exercise() -> None:
    # -- NullTracer: the entire no-op surface
    null = NullTracer()
    null.count("c")
    null.gauge_max("g", 1)
    null.annotate("a", 1)
    null.iteration(residual=0.5)
    with null.timer("t"):
        pass
    assert null.snapshot() is None
    assert NULL_TRACER.enabled is False

    # -- Tracer: counters, gauges, annotations, iterations, timers
    now = [0.0]
    t = Tracer(clock=lambda: now.__setitem__(0, now[0] + 1.0) or now[0])
    t.count("messages", 10)
    t.count("messages", 5)
    t.count("runs")
    t.gauge_max("peak", 3)
    t.gauge_max("peak", 9)
    t.gauge_max("peak", 4)
    t.annotate("method", "grid-bp")
    t.annotate("converged", True)
    try:
        t.annotate("bad", [1])
    except TypeError:
        pass
    with t.timer("outer"):
        with t.timer("inner"):
            t.iteration(residual=0.5, messages=10, messages_cum=10)
            t.iteration(residual=0.25, messages=10, messages_cum=20)
    t.iteration(iteration=99, residual=0.1)
    try:
        t.iteration(residual=[0.1])
    except TypeError:
        pass
    repr(t)

    # -- snapshot / to_json, both timing variants
    snap = t.snapshot()
    assert json.loads(json.dumps(snap)) == snap
    assert "timers" not in t.snapshot(include_timings=False)
    json.loads(t.to_json())
    json.loads(t.to_json(include_timings=False, indent=2))

    # -- report: table (full, empty, no-method title, extras), summary
    assert "residual" in format_trace_table(snap)
    assert "(no iteration records)" in format_trace_table(Tracer().snapshot())
    bare = Tracer()
    bare.iteration(residual=0.5, custom=1)
    assert "custom" in format_trace_table(bare.snapshot())
    assert "counters:" in trace_summary(snap)
    assert trace_summary(Tracer().snapshot()) == "(empty trace)"
    for fn in (format_trace_table, trace_summary, lambda x: merge_traces([x])):
        try:
            fn(None)
        except TypeError:
            pass

    # -- reservoir_summary: empty and populated reservoirs
    assert reservoir_summary([]) == {"n": 0, "p50": None, "p99": None, "mean": None}
    filled = reservoir_summary([1.0, 2.0, 3.0])
    assert filled["n"] == 3 and filled["p50"] == 2.0

    # -- merge_traces: aggregation and both error paths
    other = Tracer(clock=lambda: 0.0)
    other.annotate("method", "grid-bp")
    other.annotate("seed", 7)
    other.count("messages", 2)
    other.gauge_max("peak", 100)
    with other.timer("outer"):
        other.iteration(residual=0.3)
    merged = merge_traces([snap, other.snapshot()])
    assert merged["counters"]["messages"] == 17
    assert merged["gauges"]["peak"] == 100
    assert merged["meta"] == {"method": "grid-bp"}
    try:
        merge_traces([])
    except ValueError:
        pass
    bad = other.snapshot()
    bad["schema_version"] = TRACE_SCHEMA_VERSION + 1
    try:
        merge_traces([snap, bad])
    except ValueError:
        pass


# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def executed_lines():
    tracer = trace_mod.Trace(count=1, trace=0)
    tracer.runfunc(_exercise)
    counts = tracer.results().counts  # {(filename, lineno): hits}
    by_file: dict = {}
    for (filename, lineno), hits in counts.items():
        if hits > 0:
            by_file.setdefault(filename, set()).add(lineno)
    return by_file


@pytest.mark.parametrize(
    "module", [tracer_module, report_module], ids=lambda m: m.__name__
)
def test_obs_module_line_coverage(executed_lines, module):
    executable = _executable_lines(module)
    assert executable, f"found no executable lines in {module.__name__}"
    executed = executed_lines.get(module.__file__, set())
    covered = executable & executed
    ratio = len(covered) / len(executable)
    missed = sorted(executable - executed)
    assert ratio >= COVERAGE_FLOOR, (
        f"{module.__name__}: {ratio:.1%} line coverage "
        f"({len(covered)}/{len(executable)}), below the "
        f"{COVERAGE_FLOOR:.0%} floor; missed lines: {missed}"
    )
