"""Tests for NLOS contamination and the robust mixture likelihood."""

import dataclasses

import numpy as np
import pytest

from repro.core import GridBPConfig, GridBPLocalizer
from repro.measurement import (
    ConnectivityOnly,
    GaussianRanging,
    NLOSRanging,
    RobustRanging,
    observe,
)
from repro.network import NetworkConfig, UnitDiskRadio, generate_network


class TestNLOSRanging:
    BASE = GaussianRanging(0.01)

    def test_positive_bias_on_contaminated(self):
        model = NLOSRanging(self.BASE, nlos_fraction=1.0, bias_mean=0.2)
        obs = model.observe(np.full(3000, 0.5), rng=0)
        # every measurement biased by Exp(0.2): mean ≈ 0.7
        assert obs.mean() == pytest.approx(0.7, abs=0.02)
        assert (obs > 0.45).all()

    def test_zero_fraction_is_clean(self):
        model = NLOSRanging(self.BASE, nlos_fraction=0.0, bias_mean=0.2)
        obs = model.observe(np.full(3000, 0.5), rng=0)
        assert abs(obs.mean() - 0.5) < 0.01

    def test_contamination_fraction(self):
        model = NLOSRanging(self.BASE, nlos_fraction=0.3, bias_mean=0.5)
        obs = model.observe(np.full(4000, 0.5), rng=0)
        # biased measurements are well separated from clean ones at this scale
        contaminated = (obs - 0.5) > 0.05
        assert abs(contaminated.mean() - 0.3 * np.exp(-0.1)) < 0.05

    def test_symmetric_matrix(self):
        model = NLOSRanging(self.BASE, nlos_fraction=0.5, bias_mean=0.1)
        d = np.full((8, 8), 0.4)
        np.fill_diagonal(d, 0)
        obs = model.observe(d, rng=1)
        np.testing.assert_allclose(obs, obs.T)

    def test_likelihood_delegates_to_base(self):
        model = NLOSRanging(self.BASE, nlos_fraction=0.3, bias_mean=0.1)
        cand = np.linspace(0.1, 1.0, 50)
        np.testing.assert_allclose(
            model.log_likelihood(0.5, cand), self.BASE.log_likelihood(0.5, cand)
        )

    def test_validation(self):
        with pytest.raises(TypeError):
            NLOSRanging("gaussian", 0.2, 0.1)
        with pytest.raises(ValueError):
            NLOSRanging(ConnectivityOnly(), 0.2, 0.1)
        with pytest.raises(ValueError):
            NLOSRanging(self.BASE, nlos_fraction=1.5)
        with pytest.raises(ValueError):
            NLOSRanging(self.BASE, bias_mean=0.0)


class TestRobustRanging:
    BASE = GaussianRanging(0.02)

    def test_likelihood_heavier_right_tail(self):
        robust = RobustRanging(self.BASE, nlos_fraction=0.2, bias_mean=0.1)
        # an observation far ABOVE the candidate is plausible (NLOS)...
        above = robust.log_likelihood(0.8, np.array([0.5]))[0]
        base_above = self.BASE.log_likelihood(0.8, np.array([0.5]))[0]
        assert above > base_above + 10
        # ...but an observation far BELOW is not (bias is positive-only)
        below = robust.log_likelihood(0.2, np.array([0.5]))[0]
        assert below < above

    def test_likelihood_normalized(self):
        robust = RobustRanging(self.BASE, nlos_fraction=0.3, bias_mean=0.1)
        obs = np.linspace(-0.5, 3.0, 14001)
        ll = robust.log_likelihood(obs, 0.5)
        integral = np.trapezoid(np.exp(ll), obs)
        assert integral == pytest.approx(1.0, abs=5e-3)

    def test_small_fraction_approaches_base_in_probability(self):
        # In probability space a vanishing mixture weight is negligible;
        # (log space still differs deep in the tails, where the heavier
        # NLOS component dominates the base's super-exponential decay —
        # that's the point of the mixture).
        robust = RobustRanging(self.BASE, nlos_fraction=1e-9, bias_mean=0.1)
        cand = np.linspace(0.2, 0.8, 30)
        np.testing.assert_allclose(
            np.exp(robust.log_likelihood(0.5, cand)),
            np.exp(self.BASE.log_likelihood(0.5, cand)),
            atol=1e-6,
        )

    def test_sigma_inflated(self):
        robust = RobustRanging(self.BASE, nlos_fraction=0.3, bias_mean=0.1)
        s = robust.sigma_at(np.array([0.5]))
        assert s[0] > self.BASE.sigma_at(np.array([0.5]))[0]

    def test_observe_delegates(self):
        robust = RobustRanging(self.BASE, 0.3, 0.1)
        d = np.full(50, 0.4)
        np.testing.assert_allclose(
            robust.observe(d, rng=7), self.BASE.observe(d, rng=7)
        )

    def test_validation(self):
        with pytest.raises(TypeError):
            RobustRanging(123, 0.2, 0.1)
        with pytest.raises(ValueError):
            RobustRanging(ConnectivityOnly(), 0.2, 0.1)


class TestNLOSLocalizationIntegration:
    def test_bayesian_survives_heavy_nlos(self):
        net = generate_network(
            NetworkConfig(
                n_nodes=60,
                anchor_ratio=0.15,
                radio=UnitDiskRadio(0.25),
                require_connected=True,
            ),
            rng=4,
        )
        base = GaussianRanging(0.02)
        ms = observe(net, NLOSRanging(base, 0.5, 0.2), rng=5)
        cfg = GridBPConfig(grid_size=15, max_iterations=8)
        # unaware inference must not crash on gross outliers (the factor
        # falls back to link-only evidence) and stays usable
        res = GridBPLocalizer(config=cfg).localize(ms)
        err = res.errors(net.positions)[~net.anchor_mask]
        assert np.nanmean(err) < 0.5 * net.radio_range * 3

    def test_aware_at_least_as_good_at_heavy_contamination(self):
        errs_unaware, errs_aware = [], []
        base = GaussianRanging(0.02)
        for s in range(3):
            net = generate_network(
                NetworkConfig(
                    n_nodes=60,
                    anchor_ratio=0.15,
                    radio=UnitDiskRadio(0.25),
                    require_connected=True,
                ),
                rng=10 + s,
            )
            ms = observe(net, NLOSRanging(base, 0.5, 0.2), rng=20 + s)
            cfg = GridBPConfig(grid_size=15, max_iterations=8)
            unknown = ~net.anchor_mask
            unaware = GridBPLocalizer(config=cfg).localize(ms)
            ms_aware = dataclasses.replace(
                ms, ranging=RobustRanging(base, 0.5, 0.2)
            )
            aware = GridBPLocalizer(config=cfg).localize(ms_aware)
            errs_unaware.append(np.nanmean(unaware.errors(net.positions)[unknown]))
            errs_aware.append(np.nanmean(aware.errors(net.positions)[unknown]))
        assert np.mean(errs_aware) <= np.mean(errs_unaware) + 0.01

    def test_scenario_config_integration(self):
        from repro.experiments import ScenarioConfig, build_scenario
        from repro.measurement.nlos import NLOSRanging as N

        cfg = ScenarioConfig(n_nodes=40, nlos_fraction=0.3)
        net, ms, _ = build_scenario(cfg, seed=0)
        assert isinstance(ms.ranging, N)
        robust = cfg.make_robust_ranging()
        assert isinstance(robust, RobustRanging)
        with pytest.raises(ValueError):
            ScenarioConfig(nlos_fraction=2.0)
        with pytest.raises(ValueError):
            ScenarioConfig(nlos_fraction=0.2, ranging="none")
        with pytest.raises(ValueError):
            ScenarioConfig(nlos_bias_ratio=0.0)
