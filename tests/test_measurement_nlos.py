"""Tests for NLOS contamination and the robust mixture likelihood."""

import dataclasses

import numpy as np
import pytest

from repro.core import GridBPConfig, GridBPLocalizer
from repro.measurement import (
    ConnectivityOnly,
    GaussianRanging,
    NLOSRanging,
    RobustRanging,
    observe,
)
from repro.network import NetworkConfig, UnitDiskRadio, generate_network


class TestNLOSRanging:
    BASE = GaussianRanging(0.01)

    def test_positive_bias_on_contaminated(self):
        model = NLOSRanging(self.BASE, nlos_fraction=1.0, bias_mean=0.2)
        obs = model.observe(np.full(3000, 0.5), rng=0)
        # every measurement biased by Exp(0.2): mean ≈ 0.7
        assert obs.mean() == pytest.approx(0.7, abs=0.02)
        assert (obs > 0.45).all()

    def test_zero_fraction_is_clean(self):
        model = NLOSRanging(self.BASE, nlos_fraction=0.0, bias_mean=0.2)
        obs = model.observe(np.full(3000, 0.5), rng=0)
        assert abs(obs.mean() - 0.5) < 0.01

    def test_contamination_fraction(self):
        model = NLOSRanging(self.BASE, nlos_fraction=0.3, bias_mean=0.5)
        obs = model.observe(np.full(4000, 0.5), rng=0)
        # biased measurements are well separated from clean ones at this scale
        contaminated = (obs - 0.5) > 0.05
        assert abs(contaminated.mean() - 0.3 * np.exp(-0.1)) < 0.05

    def test_symmetric_matrix(self):
        model = NLOSRanging(self.BASE, nlos_fraction=0.5, bias_mean=0.1)
        d = np.full((8, 8), 0.4)
        np.fill_diagonal(d, 0)
        obs = model.observe(d, rng=1)
        np.testing.assert_allclose(obs, obs.T)

    def test_likelihood_delegates_to_base(self):
        model = NLOSRanging(self.BASE, nlos_fraction=0.3, bias_mean=0.1)
        cand = np.linspace(0.1, 1.0, 50)
        np.testing.assert_allclose(
            model.log_likelihood(0.5, cand), self.BASE.log_likelihood(0.5, cand)
        )

    def test_validation(self):
        with pytest.raises(TypeError):
            NLOSRanging("gaussian", 0.2, 0.1)
        with pytest.raises(ValueError):
            NLOSRanging(ConnectivityOnly(), 0.2, 0.1)
        with pytest.raises(ValueError):
            NLOSRanging(self.BASE, nlos_fraction=1.5)
        with pytest.raises(ValueError):
            NLOSRanging(self.BASE, bias_mean=0.0)


class TestRobustRanging:
    BASE = GaussianRanging(0.02)

    def test_likelihood_heavier_right_tail(self):
        robust = RobustRanging(self.BASE, nlos_fraction=0.2, bias_mean=0.1)
        # an observation far ABOVE the candidate is plausible (NLOS)...
        above = robust.log_likelihood(0.8, np.array([0.5]))[0]
        base_above = self.BASE.log_likelihood(0.8, np.array([0.5]))[0]
        assert above > base_above + 10
        # ...but an observation far BELOW is not (bias is positive-only)
        below = robust.log_likelihood(0.2, np.array([0.5]))[0]
        assert below < above

    def test_likelihood_normalized(self):
        robust = RobustRanging(self.BASE, nlos_fraction=0.3, bias_mean=0.1)
        obs = np.linspace(-0.5, 3.0, 14001)
        ll = robust.log_likelihood(obs, 0.5)
        integral = np.trapezoid(np.exp(ll), obs)
        assert integral == pytest.approx(1.0, abs=5e-3)

    def test_small_fraction_approaches_base_in_probability(self):
        # In probability space a vanishing mixture weight is negligible;
        # (log space still differs deep in the tails, where the heavier
        # NLOS component dominates the base's super-exponential decay —
        # that's the point of the mixture).
        robust = RobustRanging(self.BASE, nlos_fraction=1e-9, bias_mean=0.1)
        cand = np.linspace(0.2, 0.8, 30)
        np.testing.assert_allclose(
            np.exp(robust.log_likelihood(0.5, cand)),
            np.exp(self.BASE.log_likelihood(0.5, cand)),
            atol=1e-6,
        )

    def test_sigma_inflated(self):
        robust = RobustRanging(self.BASE, nlos_fraction=0.3, bias_mean=0.1)
        s = robust.sigma_at(np.array([0.5]))
        assert s[0] > self.BASE.sigma_at(np.array([0.5]))[0]

    def test_observe_delegates(self):
        robust = RobustRanging(self.BASE, 0.3, 0.1)
        d = np.full(50, 0.4)
        np.testing.assert_allclose(
            robust.observe(d, rng=7), self.BASE.observe(d, rng=7)
        )

    def test_validation(self):
        with pytest.raises(TypeError):
            RobustRanging(123, 0.2, 0.1)
        with pytest.raises(ValueError):
            RobustRanging(ConnectivityOnly(), 0.2, 0.1)


class TestRobustRangingTails:
    """Regressions for the tail bugs a continuous sampler trips over.

    Before the fix, ``log_likelihood`` hand-rolled log-sum-exp (NaN when
    both mixture components underflow to -inf) and ``_log_emg`` used the
    ``σ²/(2μ²) + log Φ`` form (overflow / catastrophic cancellation for
    σ ≫ μ).  Both tests fail on the pre-fix code.
    """

    BASE = GaussianRanging(0.02)

    def test_extreme_candidates_give_neginf_never_nan(self):
        robust = RobustRanging(self.BASE, nlos_fraction=0.2, bias_mean=0.1)
        # candidates absurdly far from the observation: both the Gaussian
        # and EMG components underflow; the old max-shift LSE returned NaN
        cand = np.array([1e160, 1e200, 1e300])
        ll = robust.log_likelihood(1.0, cand)
        assert not np.isnan(ll).any()
        assert (ll == -np.inf).all()
        # extreme observation against ordinary candidates, both directions;
        # the positive side rides the exponential tail so its log density is
        # a finite (huge negative) value, not -inf — either is acceptable,
        # NaN is not
        for obs in (1e200, -1e200):
            ll = robust.log_likelihood(obs, np.array([0.1, 0.5]))
            assert not np.isnan(ll).any()
            assert (ll <= -1e100).all()

    def test_mixture_never_nan_on_wide_grid(self):
        robust = RobustRanging(self.BASE, nlos_fraction=0.2, bias_mean=0.1)
        obs = np.concatenate([np.geomspace(1e-6, 1e300, 60), [0.0]])
        for o in obs:
            ll = robust.log_likelihood(float(o), obs)
            assert not np.isnan(ll).any()
            assert not (ll == np.inf).any()

    def test_log_emg_finite_and_bounded_on_wide_grid(self):
        # The EMG density is a convolution of N(0, σ²) and Exp(μ), so its
        # peak cannot exceed either component's: f ≤ min(1/μ, 1/(σ√2π)).
        # The pre-fix form blows past the bound (or overflows outright)
        # once σ²/(2μ²) dominates, e.g. σ = 10, μ = 1e-4.
        for sigma in np.geomspace(1e-6, 1e6, 13):
            model = RobustRanging(
                GaussianRanging(float(sigma)), nlos_fraction=0.2, bias_mean=0.1
            )
            for mu in np.geomspace(1e-6, 1e3, 10):
                model.bias_mean = mu
                errs = np.concatenate(
                    [
                        -np.geomspace(1e-6, 1e6, 25),
                        [0.0],
                        np.geomspace(1e-6, 1e6, 25),
                    ]
                )
                ll = model._log_emg(errs, np.full_like(errs, sigma))
                assert not np.isnan(ll).any(), (sigma, mu)
                bound = min(-np.log(mu), -np.log(sigma * np.sqrt(2 * np.pi)))
                assert (ll <= bound + 1e-9).all(), (sigma, mu, ll.max(), bound)

    def test_log_emg_matches_quadrature_in_stable_regime(self):
        # Sanity-check the erfcx rewrite against brute-force numerical
        # convolution of the Gaussian with the exponential bias.
        sigma, mu = 0.05, 0.1
        model = RobustRanging(GaussianRanging(sigma), 0.2, mu)
        b = np.linspace(0, 3.0, 30001)
        for err in (-0.1, 0.0, 0.05, 0.3, 1.0):
            f = np.trapezoid(
                np.exp(-((err - b) ** 2) / (2 * sigma**2))
                / (sigma * np.sqrt(2 * np.pi))
                * np.exp(-b / mu)
                / mu,
                b,
            )
            got = float(model._log_emg(np.array([err]), np.array([sigma]))[0])
            assert got == pytest.approx(np.log(f), abs=1e-4)

    def test_log_emg_deep_right_tail_branch(self):
        # err ≫ σ²/μ exercises the log_ndtr fallback branch (erfcx would
        # overflow); the density there is ≈ Exp(μ)'s own tail.
        sigma, mu = 0.01, 0.1
        model = RobustRanging(GaussianRanging(sigma), 0.2, mu)
        err = np.array([50.0, 500.0])
        ll = model._log_emg(err, np.full_like(err, sigma))
        expected = -np.log(mu) + sigma**2 / (2 * mu**2) - err / mu
        np.testing.assert_allclose(ll, expected, rtol=1e-12)
        # and the branch seam is continuous
        seam = np.linspace(0.3, 0.4, 1000)  # spans arg = -25 for these params
        lls = model._log_emg(seam, np.full_like(seam, sigma))
        assert np.abs(np.diff(lls)).max() < 0.1


class TestNLOSLocalizationIntegration:
    def test_bayesian_survives_heavy_nlos(self):
        net = generate_network(
            NetworkConfig(
                n_nodes=60,
                anchor_ratio=0.15,
                radio=UnitDiskRadio(0.25),
                require_connected=True,
            ),
            rng=4,
        )
        base = GaussianRanging(0.02)
        ms = observe(net, NLOSRanging(base, 0.5, 0.2), rng=5)
        cfg = GridBPConfig(grid_size=15, max_iterations=8)
        # unaware inference must not crash on gross outliers (the factor
        # falls back to link-only evidence) and stays usable
        res = GridBPLocalizer(config=cfg).localize(ms)
        err = res.errors(net.positions)[~net.anchor_mask]
        assert np.nanmean(err) < 0.5 * net.radio_range * 3

    def test_aware_at_least_as_good_at_heavy_contamination(self):
        errs_unaware, errs_aware = [], []
        base = GaussianRanging(0.02)
        for s in range(3):
            net = generate_network(
                NetworkConfig(
                    n_nodes=60,
                    anchor_ratio=0.15,
                    radio=UnitDiskRadio(0.25),
                    require_connected=True,
                ),
                rng=10 + s,
            )
            ms = observe(net, NLOSRanging(base, 0.5, 0.2), rng=20 + s)
            cfg = GridBPConfig(grid_size=15, max_iterations=8)
            unknown = ~net.anchor_mask
            unaware = GridBPLocalizer(config=cfg).localize(ms)
            ms_aware = dataclasses.replace(
                ms, ranging=RobustRanging(base, 0.5, 0.2)
            )
            aware = GridBPLocalizer(config=cfg).localize(ms_aware)
            errs_unaware.append(np.nanmean(unaware.errors(net.positions)[unknown]))
            errs_aware.append(np.nanmean(aware.errors(net.positions)[unknown]))
        assert np.mean(errs_aware) <= np.mean(errs_unaware) + 0.01

    def test_scenario_config_integration(self):
        from repro.experiments import ScenarioConfig, build_scenario
        from repro.measurement.nlos import NLOSRanging as N

        cfg = ScenarioConfig(n_nodes=40, nlos_fraction=0.3)
        net, ms, _ = build_scenario(cfg, seed=0)
        assert isinstance(ms.ranging, N)
        robust = cfg.make_robust_ranging()
        assert isinstance(robust, RobustRanging)
        with pytest.raises(ValueError):
            ScenarioConfig(nlos_fraction=2.0)
        with pytest.raises(ValueError):
            ScenarioConfig(nlos_fraction=0.2, ranging="none")
        with pytest.raises(ValueError):
            ScenarioConfig(nlos_bias_ratio=0.0)
