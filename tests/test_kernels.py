"""Kernel-backend equivalence suite — the gate for ``repro.kernels``.

The batched trial-axis backend exists only as a faster execution strategy
for the reference grid-BP kernel: every test here asserts **bit identity**
(``np.array_equal`` on beliefs/estimates, ``==`` on the integer ledger),
never closeness.  The suite covers:

* randomized property sweeps (hypothesis) over batch width T, network
  size N, grid cells K, and both schedules;
* degenerate shapes — T=1, a single unknown, all-anchors networks, and
  disconnected unknowns whose inbox is empty every round;
* the compatibility partition: mixed grid shapes/configs must split into
  separate groups (and ``BatchedBackend.run_batch`` must *refuse* a mixed
  batch), never silently co-batch.

The fast lane (module marker ``kernel``) runs in the default suite; the
randomized sweeps are additionally marked ``slow`` — select them with
``-m "kernel and slow"``.
"""

import dataclasses as dc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GridBPConfig, GridBPLocalizer
from repro.core.bnloc import localize_batch
from repro.core.potentials import shared_registry
from repro.kernels import (
    IncompatibleBatchError,
    compatibility_key,
    get_backend,
    group_compatible,
)
from repro.measurement import GaussianRanging, observe
from repro.network import NetworkConfig, UnitDiskRadio, generate_network
from repro.obs import NULL_TRACER, Tracer

pytestmark = pytest.mark.kernel

BASE_CFG = GridBPConfig(grid_size=8, max_iterations=5, tol=1e-9)


def _measurements(seed, n=14, anchor_ratio=0.25, radio=0.42, connected=True):
    net = generate_network(
        NetworkConfig(
            n_nodes=n,
            anchor_ratio=anchor_ratio,
            radio=UnitDiskRadio(radio),
            require_connected=connected,
        ),
        rng=seed,
    )
    return observe(net, GaussianRanging(0.03), rng=seed + 1)


def _problem(ms, cfg):
    """Prepared BPProblem for *ms* (the backend-layer input)."""
    return GridBPLocalizer(config=cfg)._prepare(ms, NULL_TRACER).problem


def _run_pair(ms_list, cfg):
    """(batched localize_batch results, sequential reference results)."""
    bat_cfg = dc.replace(cfg, backend="batched")
    batched = localize_batch(
        [(GridBPLocalizer(config=bat_cfg), ms) for ms in ms_list]
    )
    sequential = [
        GridBPLocalizer(config=cfg).localize(ms) for ms in ms_list
    ]
    return batched, sequential


def _assert_bit_equal(a, b):
    assert np.array_equal(a.localized_mask, b.localized_mask)
    m = a.localized_mask
    assert np.array_equal(a.estimates[m], b.estimates[m])
    assert a.n_iterations == b.n_iterations
    assert a.converged == b.converged
    assert a.messages_sent == b.messages_sent
    assert a.bytes_sent == b.bytes_sent
    ba, bb = a.extras["beliefs"], b.extras["beliefs"]
    assert sorted(ba) == sorted(bb)
    for u in ba:
        assert np.array_equal(ba[u], bb[u])


class TestDegenerateShapes:
    def test_single_trial_batch_equals_reference(self):
        ms = _measurements(21)
        batched, sequential = _run_pair([ms], BASE_CFG)
        _assert_bit_equal(batched[0], sequential[0])

    def test_single_unknown_node(self):
        # n=5 at anchor_ratio 0.8 leaves exactly one unknown: no
        # unknown-unknown edges, the kernel must converge in round zero.
        ms = _measurements(5, n=5, anchor_ratio=0.8, radio=0.9)
        assert len(ms.unknown_ids) == 1
        batched, sequential = _run_pair([ms, ms], BASE_CFG)
        for b, s in zip(batched, sequential):
            _assert_bit_equal(b, s)
            assert b.converged and b.n_iterations == 0

    def test_all_anchor_network(self):
        net = generate_network(
            NetworkConfig(
                n_nodes=6,
                anchor_ratio=0.5,
                radio=UnitDiskRadio(0.9),
                require_connected=True,
            ),
            rng=9,
        )
        net.anchor_mask[:] = True  # every node self-localizes
        ms = observe(net, GaussianRanging(0.03), rng=10)
        assert len(ms.unknown_ids) == 0
        batched, sequential = _run_pair([ms], BASE_CFG)
        _assert_bit_equal(batched[0], sequential[0])

    def test_empty_inbox_disconnected_unknowns(self):
        # A sparse disconnected network: some unknowns receive no messages
        # at all (no anchors, no unknown neighbors in range).
        ms = _measurements(33, n=12, radio=0.18, connected=False)
        batched, sequential = _run_pair([ms, ms, ms], BASE_CFG)
        for b, s in zip(batched, sequential):
            _assert_bit_equal(b, s)

    def test_mixed_convergence_freezing(self):
        # Different networks converge after different round counts; a
        # frozen trial must stop consuming iterations (and messages) while
        # the rest of the stack keeps running.
        ms_list = [_measurements(s) for s in (40, 42, 44, 46)]
        cfg = dc.replace(BASE_CFG, max_iterations=15, tol=1e-3)
        batched, sequential = _run_pair(ms_list, cfg)
        for b, s in zip(batched, sequential):
            _assert_bit_equal(b, s)
        assert len({r.n_iterations for r in batched}) > 1, (
            "scenario choice no longer exercises mixed per-trial "
            "convergence — pick seeds whose round counts differ"
        )


class TestSchedulesAndTelemetry:
    @pytest.mark.parametrize("schedule", ["sync", "serial"])
    def test_both_schedules_bit_identical(self, schedule):
        cfg = dc.replace(BASE_CFG, schedule=schedule)
        ms_list = [_measurements(s) for s in (50, 51, 52)]
        batched, sequential = _run_pair(ms_list, cfg)
        for b, s in zip(batched, sequential):
            _assert_bit_equal(b, s)

    def test_traced_single_trial_telemetry_matches_reference(self):
        # T=1 through the batched backend still emits the per-iteration
        # trace; everything except the backend name must match reference.
        ms = _measurements(27)

        def run(backend):
            loc = GridBPLocalizer(
                config=dc.replace(BASE_CFG, backend=backend), tracer=Tracer()
            )
            return loc.localize(ms).telemetry

        ref, bat = run("reference"), run("batched")
        assert bat["meta"]["backend"] == "batched"
        assert ref["meta"]["backend"] == "reference"
        strip = lambda t: {
            k: (
                {mk: mv for mk, mv in v.items() if mk != "backend"}
                if k == "meta"
                else v
            )
            for k, v in t.items()
            if k != "timers"
        }
        assert strip(ref) == strip(bat)

    def test_batch_annotations_present(self):
        ms_list = [_measurements(s) for s in (60, 61)]
        cfg = dc.replace(BASE_CFG, backend="batched")
        locs = [GridBPLocalizer(config=cfg, tracer=Tracer()) for _ in ms_list]
        results = localize_batch(list(zip(locs, ms_list)))
        for r in results:
            assert r.telemetry["meta"]["backend"] == "batched"
            assert r.telemetry["meta"]["batch_size"] == 2
            assert r.telemetry["meta"]["batch_groups"] == 1


class TestCompatibilityPartition:
    def test_mixed_grid_shapes_split(self):
        ms = _measurements(70)
        p8 = _problem(ms, BASE_CFG)
        p10 = _problem(ms, dc.replace(BASE_CFG, grid_size=10))
        groups = group_compatible([p8, p10, p8, p10, p8])
        assert [idxs for _k, idxs in groups] == [[0, 2, 4], [1, 3]]
        assert compatibility_key(p8) != compatibility_key(p10)

    def test_mixed_config_splits(self):
        ms = _measurements(70)
        a = _problem(ms, BASE_CFG)
        b = _problem(ms, dc.replace(BASE_CFG, damping=0.25))
        groups = group_compatible([a, b])
        assert [idxs for _k, idxs in groups] == [[0], [1]]

    def test_run_batch_refuses_mixed_batch(self):
        ms = _measurements(70)
        p8 = _problem(ms, dc.replace(BASE_CFG, backend="batched"))
        p10 = _problem(
            ms, dc.replace(BASE_CFG, grid_size=10, backend="batched")
        )
        with pytest.raises(IncompatibleBatchError, match="group_compatible"):
            get_backend("batched").run_batch([p8, p10])

    def test_localize_batch_partitions_mixed_configs(self):
        # The public API must split incompatible trials into separate
        # groups and still return bit-exact, input-ordered results.
        ms_list = [_measurements(s) for s in (80, 81, 82, 83)]
        cfgs = [
            dc.replace(BASE_CFG, backend="batched"),
            dc.replace(BASE_CFG, grid_size=10, backend="batched"),
            dc.replace(BASE_CFG, backend="batched"),
            dc.replace(BASE_CFG, grid_size=10, backend="batched"),
        ]
        pairs = [
            (GridBPLocalizer(config=c), ms) for c, ms in zip(cfgs, ms_list)
        ]
        batched = localize_batch(pairs)
        for (loc, ms), b in zip(pairs, batched):
            ref = GridBPLocalizer(
                config=dc.replace(loc.config, backend="reference")
            ).localize(ms)
            _assert_bit_equal(b, ref)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="reference"):
            GridBPConfig(backend="no-such-backend")
        with pytest.raises(ValueError, match="available"):
            get_backend("no-such-backend")


@pytest.mark.slow
class TestRandomizedEquivalence:
    """Hypothesis sweeps over (T, N, K, schedule, seeds).

    Scenario builds dominate the runtime, so examples are capped; the
    draw space still covers batch widths 1–4, grids 6²–12² and both
    schedules.  Any counterexample is a real kernel divergence — there is
    no tolerance to hide behind.
    """

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_trials=st.integers(min_value=1, max_value=4),
        n_nodes=st.integers(min_value=6, max_value=18),
        grid_size=st.integers(min_value=6, max_value=12),
        schedule=st.sampled_from(["sync", "serial"]),
    )
    def test_batched_matches_sequential(
        self, seed, n_trials, n_nodes, grid_size, schedule
    ):
        cfg = dc.replace(BASE_CFG, grid_size=grid_size, schedule=schedule)
        ms_list = [
            _measurements(seed * 7 + 2 * t, n=n_nodes, connected=False)
            for t in range(n_trials)
        ]
        shared_registry().clear()
        batched, sequential = _run_pair(ms_list, cfg)
        for b, s in zip(batched, sequential):
            _assert_bit_equal(b, s)

    @settings(max_examples=20, deadline=None)
    @given(
        grid_sizes=st.lists(
            st.sampled_from([6, 8, 10]), min_size=1, max_size=6
        )
    )
    def test_grouping_is_a_partition(self, grid_sizes):
        ms = _measurements(70)
        problems = [
            _problem(ms, dc.replace(BASE_CFG, grid_size=g))
            for g in grid_sizes
        ]
        groups = group_compatible(problems)
        flat = [i for _k, idxs in groups for i in idxs]
        assert sorted(flat) == list(range(len(problems)))  # exhaustive
        for key, idxs in groups:
            assert all(
                compatibility_key(problems[i]) == key for i in idxs
            )  # homogeneous
        # distinct groups have distinct keys — nothing co-batched
        keys = [key for key, _idxs in groups]
        assert len(set(keys)) == len(keys)
