"""Tests for angle-of-arrival measurements and bearing-augmented inference."""

import numpy as np
import pytest

from repro.core import Grid2D, GridBPConfig, GridBPLocalizer
from repro.core.potentials import anchor_bearing_potential, pairwise_bearing_potential
from repro.measurement import (
    BearingModel,
    ConnectivityOnly,
    GaussianRanging,
    observe,
    true_bearings,
    wrap_angle,
)
from repro.network import NetworkConfig, UnitDiskRadio, generate_network
from repro.parallel import DistributedBPSimulator


class TestWrapAngle:
    def test_identity_in_range(self):
        np.testing.assert_allclose(wrap_angle(np.array([0.5, -0.5])), [0.5, -0.5])

    def test_wraps(self):
        assert wrap_angle(np.array([np.pi + 0.1]))[0] == pytest.approx(-np.pi + 0.1)
        assert wrap_angle(np.array([2 * np.pi]))[0] == pytest.approx(0.0, abs=1e-12)


class TestTrueBearings:
    def test_known_geometry(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        B = true_bearings(pts)
        assert B[0, 1] == pytest.approx(0.0)
        assert B[1, 0] == pytest.approx(np.pi)
        assert B[0, 2] == pytest.approx(np.pi / 2)

    def test_antisymmetry(self):
        pts = np.random.default_rng(0).uniform(size=(10, 2))
        B = true_bearings(pts)
        iu = np.triu_indices(10, k=1)
        np.testing.assert_allclose(
            wrap_angle(B[iu] - (B.T[iu] + np.pi)), 0.0, atol=1e-12
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            true_bearings(np.zeros((3, 3)))


class TestBearingModel:
    def test_noise_scale(self):
        model = BearingModel(sigma_rad=0.1)
        obs = model.observe(np.zeros(5000), rng=0)
        assert abs(np.std(obs) - 0.1) < 0.01

    def test_likelihood_peak_at_truth(self):
        model = BearingModel(sigma_rad=0.2)
        cand = np.linspace(-np.pi, np.pi, 721)
        ll = model.log_likelihood(0.7, cand)
        assert abs(cand[np.argmax(ll)] - 0.7) < 0.01

    def test_likelihood_periodic(self):
        model = BearingModel(sigma_rad=0.3)
        a = model.log_likelihood(0.1, np.array([0.2]))
        b = model.log_likelihood(0.1 + 2 * np.pi, np.array([0.2]))
        np.testing.assert_allclose(a, b)

    def test_likelihood_normalized(self):
        model = BearingModel(sigma_rad=0.25)
        theta = np.linspace(-np.pi, np.pi, 10001)
        integral = np.trapezoid(np.exp(model.log_likelihood(0.0, theta)), theta)
        assert integral == pytest.approx(1.0, abs=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            BearingModel(sigma_rad=0.0)


class TestGridBearings:
    def test_pairwise_bearings_antisymmetric(self):
        grid = Grid2D(6)
        B = grid.pairwise_center_bearings()
        assert B is grid.pairwise_center_bearings()  # cached
        iu = np.triu_indices(grid.n_cells, k=1)
        np.testing.assert_allclose(
            wrap_angle(B[iu] - (B.T[iu] + np.pi)), 0.0, atol=1e-12
        )

    def test_bearings_to_point(self):
        grid = Grid2D(4)
        b = grid.bearings_to_point(np.array([10.0, 0.5]))
        # a point far to the right: all bearings ≈ 0
        assert np.abs(b).max() < 0.1


class TestBearingPotentials:
    GRID = Grid2D(12)
    MODEL = BearingModel(0.1)

    def test_pairwise_peak_along_bearing(self):
        psi = pairwise_bearing_potential(self.GRID, 0.0, np.nan, self.MODEL)
        ki, kj = np.unravel_index(np.argmax(psi), psi.shape)
        d = self.GRID.centers[kj] - self.GRID.centers[ki]
        assert abs(np.arctan2(d[1], d[0])) < 0.2

    def test_both_directions_sharper(self):
        one = pairwise_bearing_potential(self.GRID, 0.5, np.nan, self.MODEL)
        both = pairwise_bearing_potential(
            self.GRID, 0.5, wrap_angle(np.array([0.5 + np.pi]))[0], self.MODEL
        )
        # normalized to max 1; the two-sided version concentrates more
        assert both.sum() < one.sum()

    def test_missing_both_raises(self):
        with pytest.raises(ValueError):
            pairwise_bearing_potential(self.GRID, np.nan, np.nan, self.MODEL)

    def test_anchor_potential_ray(self):
        anchor = np.array([0.5, 0.5])
        # node measured the anchor due east => node is WEST of the anchor
        pot = anchor_bearing_potential(self.GRID, anchor, 0.0, np.nan, self.MODEL)
        best = self.GRID.centers[np.argmax(pot)]
        assert best[0] < 0.5
        assert abs(best[1] - 0.5) < 0.15

    def test_anchor_potential_from_anchor_side(self):
        anchor = np.array([0.5, 0.5])
        # anchor measured the node due north => node is NORTH of the anchor
        pot = anchor_bearing_potential(
            self.GRID, anchor, np.nan, np.pi / 2, self.MODEL
        )
        best = self.GRID.centers[np.argmax(pot)]
        assert best[1] > 0.5

    def test_anchor_missing_both_raises(self):
        with pytest.raises(ValueError):
            anchor_bearing_potential(
                self.GRID, np.array([0.5, 0.5]), np.nan, np.nan, self.MODEL
            )


class TestAoALocalization:
    @pytest.fixture(scope="class")
    def net(self):
        return generate_network(
            NetworkConfig(
                n_nodes=60,
                anchor_ratio=0.12,
                radio=UnitDiskRadio(0.25),
                require_connected=True,
            ),
            rng=6,
        )

    CFG = GridBPConfig(grid_size=15, max_iterations=8)

    def _err(self, net, ms):
        res = GridBPLocalizer(config=self.CFG).localize(ms)
        return float(np.nanmean(res.errors(net.positions)[~net.anchor_mask]))

    def test_observe_bearings_shape(self, net):
        ms = observe(net, GaussianRanging(0.02), rng=1, bearings=BearingModel(0.1))
        assert ms.has_bearings
        assert np.isfinite(ms.observed_bearings[ms.adjacency]).all()
        assert np.isnan(ms.observed_bearings[~ms.adjacency]).all()

    def test_bearings_improve_ranging(self, net):
        base = observe(net, GaussianRanging(0.05), rng=1)
        with_aoa = observe(
            net, GaussianRanging(0.05), rng=1, bearings=BearingModel(0.1)
        )
        assert self._err(net, with_aoa) < self._err(net, base)

    def test_aoa_only_localizes(self, net):
        ms = observe(net, ConnectivityOnly(), rng=1, bearings=BearingModel(0.1))
        err = self._err(net, ms)
        assert err < 0.3 * net.radio_range * 3

    def test_distributed_matches_centralized_with_bearings(self, net):
        ms = observe(net, GaussianRanging(0.02), rng=2, bearings=BearingModel(0.15))
        central = GridBPLocalizer(config=self.CFG).localize(ms)
        dist, _ = DistributedBPSimulator(config=self.CFG).run(ms)
        np.testing.assert_allclose(dist.estimates, central.estimates, atol=1e-6)

    def test_measurement_set_validation(self, net):
        ms = observe(net, GaussianRanging(0.02), rng=1, bearings=BearingModel(0.1))
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(ms, bearing_model=None)
        with pytest.raises(ValueError):
            dataclasses.replace(
                ms, observed_bearings=np.zeros((3, 3))
            )

    def test_reproducible(self, net):
        a = observe(net, GaussianRanging(0.02), rng=9, bearings=BearingModel(0.1))
        b = observe(net, GaussianRanging(0.02), rng=9, bearings=BearingModel(0.1))
        np.testing.assert_array_equal(
            a.observed_bearings[a.adjacency], b.observed_bearings[b.adjacency]
        )
