"""Unit tests for repro.network.topology.WSNetwork."""

import numpy as np
import pytest

from repro.network.topology import WSNetwork


def chain_network(n=5, spacing=0.1, anchors=(0,)):
    positions = np.column_stack([np.arange(n) * spacing, np.zeros(n)])
    adj = np.zeros((n, n), dtype=bool)
    for i in range(n - 1):
        adj[i, i + 1] = adj[i + 1, i] = True
    mask = np.zeros(n, dtype=bool)
    mask[list(anchors)] = True
    return WSNetwork(
        positions=positions,
        anchor_mask=mask,
        adjacency=adj,
        radio_range=spacing * 1.5,
    )


class TestConstruction:
    def test_basic_properties(self):
        net = chain_network(5, anchors=(0, 4))
        assert net.n_nodes == 5
        assert net.n_anchors == 2
        np.testing.assert_array_equal(net.anchor_ids, [0, 4])
        np.testing.assert_array_equal(net.unknown_ids, [1, 2, 3])
        assert net.anchor_positions.shape == (2, 2)

    def test_rejects_asymmetric_adjacency(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = True
        with pytest.raises(ValueError):
            WSNetwork(np.zeros((3, 2)), np.zeros(3, bool), adj)

    def test_rejects_self_loops(self):
        adj = np.eye(3, dtype=bool)
        with pytest.raises(ValueError):
            WSNetwork(np.zeros((3, 2)), np.zeros(3, bool), adj)

    def test_rejects_bad_mask_shape(self):
        with pytest.raises(ValueError):
            WSNetwork(np.zeros((3, 2)), np.zeros(4, bool), np.zeros((3, 3), bool))

    def test_rejects_bad_radio_range(self):
        with pytest.raises(ValueError):
            WSNetwork(
                np.zeros((2, 2)),
                np.zeros(2, bool),
                np.zeros((2, 2), bool),
                radio_range=0,
            )


class TestGraphOps:
    def test_neighbors_and_degree(self):
        net = chain_network(4)
        np.testing.assert_array_equal(net.neighbors(0), [1])
        np.testing.assert_array_equal(net.neighbors(1), [0, 2])
        np.testing.assert_array_equal(net.degree(), [1, 2, 2, 1])
        assert net.mean_degree() == pytest.approx(1.5)

    def test_hop_counts_chain(self):
        net = chain_network(5)
        hops = net.hop_counts()
        assert hops[0, 4] == 4
        assert hops[1, 3] == 2
        np.testing.assert_array_equal(np.diag(hops), np.zeros(5))

    def test_hop_counts_cached(self):
        net = chain_network(5)
        assert net.hop_counts() is net.hop_counts()

    def test_hops_to_anchors(self):
        net = chain_network(5, anchors=(0, 4))
        h = net.hops_to_anchors()
        assert h.shape == (5, 2)
        assert h[2, 0] == 2 and h[2, 1] == 2

    def test_connectivity(self):
        net = chain_network(5)
        assert net.is_connected()
        adj = net.adjacency.copy()
        adj[2, 3] = adj[3, 2] = False
        broken = WSNetwork(net.positions, net.anchor_mask, adj, radio_range=0.15)
        assert not broken.is_connected()
        mask = broken.largest_component_mask()
        assert mask.sum() == 3

    def test_disconnected_hops_inf(self):
        net = chain_network(4)
        adj = net.adjacency.copy()
        adj[1, 2] = adj[2, 1] = False
        broken = WSNetwork(net.positions, net.anchor_mask, adj, radio_range=0.15)
        assert np.isinf(broken.hop_counts()[0, 3])

    def test_edges(self):
        net = chain_network(4)
        edges = net.edges()
        assert edges.shape == (3, 2)
        assert (edges[:, 0] < edges[:, 1]).all()

    def test_localizable_mask(self):
        net = chain_network(5, anchors=(0,))
        assert net.localizable_mask().sum() == 4
        adj = net.adjacency.copy()
        adj[3, 4] = adj[4, 3] = False
        broken = WSNetwork(net.positions, net.anchor_mask, adj, radio_range=0.15)
        mask = broken.localizable_mask()
        assert not mask[4] and mask[1:4].all()

    def test_subnetwork(self):
        net = chain_network(5, anchors=(0, 4))
        sub = net.subnetwork(np.array([True, True, True, False, False]))
        assert sub.n_nodes == 3
        assert sub.n_anchors == 1
        assert sub.adjacency[0, 1] and sub.adjacency[1, 2]

    def test_subnetwork_bad_mask(self):
        net = chain_network(4)
        with pytest.raises(ValueError):
            net.subnetwork(np.array([True, False]))
