"""Unit tests for repro.network.radio."""

import numpy as np
import pytest

from repro.network.radio import (
    LogNormalShadowingRadio,
    QuasiUnitDiskRadio,
    UnitDiskRadio,
)
from repro.utils.geometry import pairwise_distances


def _line_positions(n, spacing):
    return np.column_stack([np.arange(n) * spacing, np.zeros(n)])


class TestUnitDiskRadio:
    def test_connectivity_exact(self):
        pts = _line_positions(4, 0.1)  # 0, .1, .2, .3
        adj = UnitDiskRadio(0.15).adjacency(pts, rng=0)
        expected = np.zeros((4, 4), dtype=bool)
        for i in range(3):
            expected[i, i + 1] = expected[i + 1, i] = True
        np.testing.assert_array_equal(adj, expected)

    def test_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(size=(30, 2))
        adj = UnitDiskRadio(0.3).adjacency(pts, rng=1)
        assert np.array_equal(adj, adj.T)
        assert not adj.diagonal().any()

    def test_p_detect_step(self):
        radio = UnitDiskRadio(0.2)
        p = radio.p_detect(np.array([0.1, 0.2, 0.21]))
        np.testing.assert_array_equal(p, [1.0, 1.0, 0.0])

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            UnitDiskRadio(0.0)


class TestQuasiUnitDiskRadio:
    def test_p_detect_regions(self):
        radio = QuasiUnitDiskRadio(0.2, alpha=0.5)
        p = radio.p_detect(np.array([0.05, 0.10, 0.15, 0.20, 0.25]))
        assert p[0] == 1.0 and p[1] == 1.0
        assert 0.0 < p[2] < 1.0
        assert p[3] == pytest.approx(0.0)
        assert p[4] == 0.0

    def test_alpha_one_is_unit_disk(self):
        radio = QuasiUnitDiskRadio(0.2, alpha=1.0)
        d = np.array([0.1, 0.19, 0.21])
        np.testing.assert_array_equal(
            radio.p_detect(d), UnitDiskRadio(0.2).p_detect(d)
        )

    def test_adjacency_symmetric(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(size=(40, 2))
        adj = QuasiUnitDiskRadio(0.3, alpha=0.5).adjacency(pts, rng=4)
        assert np.array_equal(adj, adj.T)

    def test_reproducible(self):
        pts = np.random.default_rng(1).uniform(size=(20, 2))
        radio = QuasiUnitDiskRadio(0.3, alpha=0.5)
        np.testing.assert_array_equal(
            radio.adjacency(pts, rng=7), radio.adjacency(pts, rng=7)
        )

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            QuasiUnitDiskRadio(0.2, alpha=1.5)


class TestLogNormalShadowingRadio:
    def test_median_range_calibration(self):
        radio = LogNormalShadowingRadio(0.2, shadowing_db=6.0)
        p = radio.p_detect(np.array([0.2]))
        assert p[0] == pytest.approx(0.5, abs=1e-9)

    def test_monotone_decreasing(self):
        radio = LogNormalShadowingRadio(0.2, shadowing_db=4.0)
        d = np.linspace(0.02, 0.5, 20)
        p = radio.p_detect(d)
        assert (np.diff(p) <= 1e-12).all()

    def test_zero_shadowing_is_disk(self):
        radio = LogNormalShadowingRadio(0.2, shadowing_db=0.0)
        p = radio.p_detect(np.array([0.19, 0.21]))
        np.testing.assert_array_equal(p, [1.0, 0.0])

    def test_adjacency_statistics(self):
        # Fraction of connected pairs at the median range should be ~0.5.
        radio = LogNormalShadowingRadio(0.2, shadowing_db=5.0)
        pts = _line_positions(2, 0.2)
        hits = 0
        trials = 400
        for s in range(trials):
            hits += radio.adjacency(pts, rng=s)[0, 1]
        assert abs(hits / trials - 0.5) < 0.08

    def test_powers_consistent_with_adjacency(self):
        radio = LogNormalShadowingRadio(0.2, shadowing_db=4.0)
        rng = np.random.default_rng(0)
        pts = rng.uniform(size=(15, 2))
        d = pairwise_distances(pts)
        power = radio.sample_power_db(d, rng=1)
        adj = radio.adjacency_from_powers(power)
        assert np.array_equal(adj, adj.T)
        linked = adj[np.triu_indices(15, k=1)]
        pw = power[np.triu_indices(15, k=1)]
        assert (pw[linked] >= radio.threshold_db).all()
        assert (pw[~linked] < radio.threshold_db).all()

    def test_invalid_shadowing(self):
        with pytest.raises(ValueError):
            LogNormalShadowingRadio(0.2, shadowing_db=-1.0)


class TestAdjacencyFromDistances:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            UnitDiskRadio(0.2).adjacency_from_distances(np.zeros((2, 3)))
