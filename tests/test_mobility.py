"""Unit and integration tests for repro.mobility."""

import numpy as np
import pytest

from repro.core.bnloc import GridBPConfig
from repro.measurement import GaussianRanging
from repro.mobility import (
    MCLTracker,
    RandomWalkMobility,
    RandomWaypointMobility,
    SequentialGridTracker,
)
from repro.network import NetworkConfig, UnitDiskRadio, generate_network


@pytest.fixture(scope="module")
def net():
    return generate_network(
        NetworkConfig(
            n_nodes=40,
            anchor_ratio=0.2,
            radio=UnitDiskRadio(0.3),
            require_connected=True,
        ),
        rng=11,
    )


class TestRandomWaypoint:
    def test_shape_and_bounds(self, net):
        model = RandomWaypointMobility(speed_range=(0.02, 0.05))
        traj = model.trajectory(net.positions, 20, rng=0)
        assert traj.shape == (21, net.n_nodes, 2)
        assert (traj >= 0).all()
        assert (traj[..., 0] <= 1).all() and (traj[..., 1] <= 1).all()

    def test_initial_slice(self, net):
        model = RandomWaypointMobility()
        traj = model.trajectory(net.positions, 5, rng=0)
        np.testing.assert_array_equal(traj[0], net.positions)

    def test_speed_bound_respected(self, net):
        model = RandomWaypointMobility(speed_range=(0.01, 0.04))
        traj = model.trajectory(net.positions, 30, rng=0)
        steps = np.linalg.norm(np.diff(traj, axis=0), axis=2)
        assert steps.max() <= 0.04 + 1e-9

    def test_nodes_actually_move(self, net):
        model = RandomWaypointMobility(speed_range=(0.03, 0.06))
        traj = model.trajectory(net.positions, 30, rng=0)
        total = np.linalg.norm(traj[-1] - traj[0], axis=1)
        assert (total > 0).mean() > 0.9

    def test_reproducible(self, net):
        model = RandomWaypointMobility()
        np.testing.assert_array_equal(
            model.trajectory(net.positions, 10, rng=3),
            model.trajectory(net.positions, 10, rng=3),
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(speed_range=(0.0, 0.1))
        with pytest.raises(ValueError):
            RandomWaypointMobility(speed_range=(0.2, 0.1))
        with pytest.raises(ValueError):
            RandomWaypointMobility(pause_steps=-1)
        with pytest.raises(ValueError):
            RandomWaypointMobility().trajectory(np.zeros((3, 2)), 0)


class TestRandomWalk:
    def test_bounds_reflect(self):
        model = RandomWalkMobility(step_sigma=0.2)
        init = np.array([[0.01, 0.01], [0.99, 0.99]])
        traj = model.trajectory(init, 50, rng=0)
        assert (traj >= 0).all() and (traj <= 1).all()

    def test_step_scale(self):
        model = RandomWalkMobility(step_sigma=0.02)
        init = np.full((200, 2), 0.5)
        traj = model.trajectory(init, 1, rng=0)
        steps = np.linalg.norm(traj[1] - traj[0], axis=1)
        # mean of |N(0,σ)| 2-D step ≈ σ·sqrt(π/2)
        assert abs(steps.mean() - 0.02 * np.sqrt(np.pi / 2)) < 0.005

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWalkMobility(step_sigma=0)


class TestSequentialGridTracker:
    def test_tracks_better_than_memoryless_late(self, net):
        model = RandomWalkMobility(step_sigma=0.02)
        traj = model.trajectory(net.positions, 6, rng=1)
        radio = UnitDiskRadio(0.3)
        ranging = GaussianRanging(0.02)
        cfg = GridBPConfig(grid_size=15, max_iterations=6)
        tracker = SequentialGridTracker(radio, ranging, motion_sigma=0.05, config=cfg)
        res = tracker.track(traj, net.anchor_mask, rng=2)
        assert res.estimates.shape == traj.shape
        err = res.mean_error_per_step(traj, ~net.anchor_mask)
        # after warm-up, tracked error should be comparable to or better
        # than the first (prior-free) step
        assert np.mean(err[2:]) <= err[0] + 0.02

    def test_localizes_every_step(self, net):
        model = RandomWalkMobility(step_sigma=0.02)
        traj = model.trajectory(net.positions, 3, rng=1)
        tracker = SequentialGridTracker(
            UnitDiskRadio(0.3),
            GaussianRanging(0.02),
            config=GridBPConfig(grid_size=12, max_iterations=4),
        )
        res = tracker.track(traj, net.anchor_mask, rng=2)
        assert res.localized[:, ~net.anchor_mask].all()

    def test_shape_validation(self, net):
        tracker = SequentialGridTracker(UnitDiskRadio(0.3), GaussianRanging(0.02))
        with pytest.raises(ValueError):
            tracker.track(np.zeros((5, 2)), net.anchor_mask)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SequentialGridTracker(UnitDiskRadio(0.3), None, motion_sigma=0)


class TestMCLTracker:
    def test_range_free_tracking(self, net):
        model = RandomWalkMobility(step_sigma=0.03)
        traj = model.trajectory(net.positions, 8, rng=1)
        tracker = MCLTracker(UnitDiskRadio(0.3), v_max=0.12, n_particles=80)
        res = tracker.track(traj, net.anchor_mask, rng=2)
        assert res.method == "mcl"
        err = res.mean_error_per_step(traj, ~net.anchor_mask)
        # MCL should settle below the radio range once history accumulates
        assert np.mean(err[3:]) < 0.3

    def test_anchor_rows_exact(self, net):
        model = RandomWalkMobility(step_sigma=0.03)
        traj = model.trajectory(net.positions, 3, rng=1)
        tracker = MCLTracker(UnitDiskRadio(0.3), n_particles=50)
        res = tracker.track(traj, net.anchor_mask, rng=2)
        np.testing.assert_allclose(
            res.estimates[:, net.anchor_mask], traj[:, net.anchor_mask]
        )

    def test_reproducible(self, net):
        model = RandomWalkMobility(step_sigma=0.03)
        traj = model.trajectory(net.positions, 3, rng=1)
        tracker = MCLTracker(UnitDiskRadio(0.3), n_particles=50)
        a = tracker.track(traj, net.anchor_mask, rng=9)
        b = tracker.track(traj, net.anchor_mask, rng=9)
        np.testing.assert_array_equal(a.estimates, b.estimates)

    def test_validation(self):
        with pytest.raises(ValueError):
            MCLTracker(UnitDiskRadio(0.3), v_max=0)
        with pytest.raises(ValueError):
            MCLTracker(UnitDiskRadio(0.3), n_particles=5)
        with pytest.raises(ValueError):
            MCLTracker(UnitDiskRadio(0.3), max_resample_rounds=0)
        tracker = MCLTracker(UnitDiskRadio(0.3))
        with pytest.raises(ValueError):
            tracker.track(np.zeros((5, 2)), np.zeros(5, bool))

    def test_degraded_mask_shape_and_healthy_default(self, net):
        model = RandomWalkMobility(step_sigma=0.03)
        traj = model.trajectory(net.positions, 4, rng=1)
        tracker = MCLTracker(UnitDiskRadio(0.3), v_max=0.12, n_particles=80)
        res = tracker.track(traj, net.anchor_mask, rng=2)
        degraded = res.extras["degraded"]
        assert degraded.shape == res.localized.shape
        assert degraded.dtype == bool
        # anchors never run the particle filter, never degrade
        assert not degraded[:, net.anchor_mask].any()

    def test_kidnapped_reseed_stays_in_field(self):
        """Regression: a node kidnapped next to a boundary anchor used to
        be re-seeded from an unclipped ``[-r, r]²`` square around the
        heard-anchor centroid, so its cloud (and estimate) could leave
        the deployment field."""
        anchor_mask = np.array([True, False])
        # t=0: anchor and node in the far corner, cloud converges there;
        # t=1: both teleport to the origin corner — the old cloud violates
        # the one-hop constraint, forcing the re-seed path with a centroid
        # whose [-r, r]² square pokes outside the field.
        traj = np.array(
            [
                [[0.9, 0.9], [0.85, 0.85]],
                [[0.0, 0.0], [0.05, 0.05]],
            ]
        )
        for seed in range(6):
            tracker = MCLTracker(UnitDiskRadio(0.3), v_max=0.05, n_particles=100)
            res = tracker.track(traj, anchor_mask, rng=seed)
            est = res.estimates[res.localized]
            assert np.isfinite(est).all()
            assert (est >= 0.0).all(), f"out-of-field estimate at seed {seed}"
            assert (est <= 1.0).all()

    def test_unfilterable_constraints_marked_degraded(self):
        """When the constraint set is unsatisfiable, the step keeps a
        fallback cloud and must be flagged degraded (coverage metrics
        exclude it) instead of counting as localized-and-fine."""

        class ConflictRadio:
            # Unknown node 2 hears anchor 0 but not anchor 1, yet every
            # point within range of anchor 0 (clipped to the field) is
            # also within range of anchor 1 — negative evidence makes the
            # filter unsatisfiable, which no deterministic disk adjacency
            # could produce organically.
            range_ = 0.3

            def adjacency(self, positions, gen):
                adj = np.zeros((3, 3), dtype=bool)
                adj[0, 2] = adj[2, 0] = True
                return adj

        anchor_mask = np.array([True, True, False])
        traj = np.array([[[0.0, 0.0], [0.1, 0.1], [0.05, 0.2]]])
        tracker = MCLTracker(ConflictRadio(), v_max=0.05, n_particles=60)
        res = tracker.track(traj, anchor_mask, rng=0)
        degraded = res.extras["degraded"]
        assert degraded[0, 2]
        assert res.localized[0, 2]  # still reports an estimate...
        est = res.estimates[0, 2]
        assert np.isfinite(est).all()  # ...and it stays inside the field
        assert (est >= 0.0).all() and (est <= 1.0).all()


class TestTrackingResult:
    def test_errors_shape_check(self, net):
        model = RandomWalkMobility(step_sigma=0.03)
        traj = model.trajectory(net.positions, 2, rng=1)
        tracker = MCLTracker(UnitDiskRadio(0.3), n_particles=50)
        res = tracker.track(traj, net.anchor_mask, rng=2)
        with pytest.raises(ValueError):
            res.errors(traj[:, :10])
        err = res.errors(traj)
        assert err.shape == traj.shape[:2]
