"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, child_seed_ints, spawn_generators, spawn_seeds


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).uniform(size=5)
        b = as_generator(42).uniform(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).uniform(size=8)
        b = as_generator(2).uniform(size=8)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        a = as_generator(ss).uniform(size=3)
        b = as_generator(np.random.SeedSequence(7)).uniform(size=3)
        np.testing.assert_array_equal(a, b)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            as_generator(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_generator("seed")

    def test_numpy_integer_seed(self):
        a = as_generator(np.int64(5)).uniform(size=3)
        b = as_generator(5).uniform(size=3)
        np.testing.assert_array_equal(a, b)


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_seeds(0, 7)) == 7
        assert len(spawn_generators(0, 4)) == 4

    def test_spawn_zero(self):
        assert spawn_seeds(0, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_children_reproducible(self):
        a = [g.uniform() for g in spawn_generators(123, 5)]
        b = [g.uniform() for g in spawn_generators(123, 5)]
        assert a == b

    def test_children_independent(self):
        draws = [g.uniform(size=4) for g in spawn_generators(9, 3)]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_child_seed_ints_reproducible(self):
        assert child_seed_ints(55, 6) == child_seed_ints(55, 6)

    def test_child_seed_ints_positive(self):
        assert all(s >= 0 for s in child_seed_ints(55, 20))

    def test_spawn_from_generator(self):
        gens = spawn_generators(np.random.default_rng(0), 3)
        assert len(gens) == 3

    def test_spawn_bad_type(self):
        with pytest.raises(TypeError):
            spawn_seeds(1.5, 3)
