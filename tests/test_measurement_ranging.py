"""Unit and property tests for repro.measurement.ranging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurement.ranging import (
    ConnectivityOnly,
    GaussianRanging,
    ProportionalGaussianRanging,
    RSSIRanging,
    TOARanging,
)
from repro.measurement.rssi import PathLossModel

pos_dist = st.floats(min_value=0.01, max_value=2.0, allow_nan=False)


class TestGaussianRanging:
    def test_observation_noise_scale(self):
        model = GaussianRanging(sigma=0.05)
        d = np.full(4000, 0.5)
        obs = model.observe(d, rng=0)
        err = obs - d
        assert abs(err.mean()) < 0.005
        assert abs(err.std() - 0.05) < 0.005

    def test_symmetric_matrix_observation(self):
        model = GaussianRanging(sigma=0.1)
        d = np.abs(np.random.default_rng(0).uniform(0.2, 0.8, size=(6, 6)))
        d = (d + d.T) / 2
        obs = model.observe(d, rng=1)
        np.testing.assert_allclose(obs, obs.T)

    def test_nonnegative(self):
        model = GaussianRanging(sigma=1.0)
        obs = model.observe(np.full(500, 0.01), rng=0)
        assert (obs >= 0).all()

    def test_likelihood_peak_at_truth(self):
        model = GaussianRanging(sigma=0.05)
        cand = np.linspace(0.1, 0.9, 200)
        ll = model.log_likelihood(0.5, cand)
        assert abs(cand[np.argmax(ll)] - 0.5) < 0.01

    def test_likelihood_normalized(self):
        model = GaussianRanging(sigma=0.05)
        obs = np.linspace(-1, 2, 6001)
        ll = model.log_likelihood(obs, 0.5)
        integral = np.trapezoid(np.exp(ll), obs)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_sigma_at(self):
        model = GaussianRanging(sigma=0.07)
        np.testing.assert_array_equal(
            model.sigma_at(np.array([0.1, 0.9])), [0.07, 0.07]
        )

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            GaussianRanging(sigma=0)

    @given(pos_dist, pos_dist)
    @settings(max_examples=30, deadline=None)
    def test_likelihood_symmetric_in_error(self, d, delta):
        model = GaussianRanging(sigma=0.1)
        hi = model.log_likelihood(d + delta, d)
        lo = model.log_likelihood(max(d - delta, 0.0), d)
        if d - delta >= 0:
            assert hi == pytest.approx(lo, rel=1e-9)


class TestProportionalGaussianRanging:
    def test_noise_grows_with_distance(self):
        model = ProportionalGaussianRanging(ratio=0.1)
        near = model.observe(np.full(3000, 0.1), rng=0) - 0.1
        far = model.observe(np.full(3000, 1.0), rng=1) - 1.0
        assert far.std() > near.std() * 5

    def test_zero_ratio_nearly_exact(self):
        model = ProportionalGaussianRanging(ratio=0.0, floor=1e-6)
        d = np.array([0.3, 0.7])
        obs = model.observe(d, rng=0)
        np.testing.assert_allclose(obs, d, atol=1e-4)

    def test_likelihood_finite(self):
        model = ProportionalGaussianRanging(ratio=0.1)
        ll = model.log_likelihood(0.5, np.linspace(0.0, 1.0, 50))
        assert np.isfinite(ll).all()

    def test_sigma_at(self):
        model = ProportionalGaussianRanging(ratio=0.1, floor=0.001)
        np.testing.assert_allclose(model.sigma_at(np.array([1.0])), [0.101])


class TestTOARanging:
    def test_bias_shifts_mean(self):
        model = TOARanging(sigma_time=0.01, mean_delay=0.05, speed=1.0)
        obs = model.observe(np.full(4000, 0.5), rng=0)
        assert obs.mean() == pytest.approx(0.55, abs=0.01)

    def test_no_delay_unbiased(self):
        model = TOARanging(sigma_time=0.02)
        obs = model.observe(np.full(4000, 0.5), rng=0)
        assert obs.mean() == pytest.approx(0.5, abs=0.01)

    def test_likelihood_peak_accounts_for_bias(self):
        model = TOARanging(sigma_time=0.01, mean_delay=0.05)
        cand = np.linspace(0.3, 0.7, 400)
        # observed 0.55 with bias 0.05 -> true distance most likely 0.5
        ll = model.log_likelihood(0.55, cand)
        assert abs(cand[np.argmax(ll)] - 0.5) < 0.01

    def test_symmetric_matrix(self):
        model = TOARanging(sigma_time=0.01, mean_delay=0.02)
        d = np.full((5, 5), 0.4)
        np.fill_diagonal(d, 0)
        obs = model.observe(d, rng=0)
        np.testing.assert_allclose(obs, obs.T)


class TestRSSIRanging:
    def test_multiplicative_error(self):
        model = RSSIRanging(PathLossModel(shadowing_db=4.0))
        near = model.observe(np.full(3000, 0.1), rng=0)
        far = model.observe(np.full(3000, 1.0), rng=1)
        # ratio error roughly constant in log space
        assert abs(np.std(np.log(near)) - np.std(np.log(far))) < 0.02

    def test_log_sigma_matches_theory(self):
        pl = PathLossModel(path_loss_exponent=3.0, shadowing_db=6.0)
        model = RSSIRanging(pl)
        obs = model.observe(np.full(8000, 0.5), rng=0)
        assert np.std(np.log(obs)) == pytest.approx(model.log_sigma, rel=0.05)

    def test_likelihood_peak_near_truth(self):
        model = RSSIRanging(PathLossModel(shadowing_db=3.0))
        cand = np.linspace(0.05, 1.5, 800)
        ll = model.log_likelihood(0.5, cand)
        # log-normal mode is below the observation, but near it for small sigma
        assert 0.3 < cand[np.argmax(ll)] <= 0.55

    def test_requires_shadowing(self):
        with pytest.raises(ValueError):
            RSSIRanging(PathLossModel(shadowing_db=0.0))

    def test_sigma_at_scales_with_distance(self):
        model = RSSIRanging(PathLossModel(shadowing_db=4.0))
        s = model.sigma_at(np.array([0.1, 1.0]))
        assert s[1] == pytest.approx(10 * s[0])


class TestConnectivityOnly:
    def test_no_distance_info(self):
        model = ConnectivityOnly()
        assert model.provides_distance is False
        d = np.array([0.1, 0.5])
        np.testing.assert_array_equal(model.observe(d, rng=0), d)

    def test_flat_likelihood(self):
        model = ConnectivityOnly()
        ll = model.log_likelihood(0.5, np.linspace(0, 1, 10))
        np.testing.assert_array_equal(ll, np.zeros(10))

    def test_sigma_infinite(self):
        assert np.isinf(ConnectivityOnly().sigma_at(np.array([0.5]))).all()
