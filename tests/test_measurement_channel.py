"""Latent channel parameters: models, joint inference, wire codecs.

The fast structural lane of the ``channel`` marker: the measurement-side
models (:mod:`repro.measurement.channel`), the substrate regressions this
PR fixed (RSSI invert round-trip, NLOS symmetric-draw validation), the
joint localizer's posterior contract, the MCMC latent-η Gibbs step, and
the serve wire codecs.  Exponent-recovery accuracy sweeps live in
``benchmarks/test_e20_joint_channel.py``.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.jointchannel import JointChannelConfig, JointChannelLocalizer
from repro.core.bnloc import GridBPConfig
from repro.core.mcmc import MCMCConfig, MCMCLocalizer
from repro.core.potentials import (
    expected_anchor_loglik,
    expected_pairwise_loglik,
    floored_loglik,
)
from repro.experiments.config import ChannelConfig, ScenarioConfig, build_scenario
from repro.io.serialize import _ranging_from_dict, _ranging_to_dict
from repro.measurement.channel import ChannelRSSIRanging, LatentNLOSRanging
from repro.measurement.nlos import NLOSRanging, RobustRanging
from repro.measurement.ranging import (
    GaussianRanging,
    RSSIRanging,
    TOARanging,
)
from repro.measurement.rssi import PathLossModel

pytestmark = pytest.mark.channel


# --------------------------------------------------------------------- #
# substrate regressions
# --------------------------------------------------------------------- #
class TestPathLossRoundTrip:
    def test_invert_clamps_at_reference_distance(self):
        pl = PathLossModel()
        # below d0 the mean RSSI saturates, so inversion can only return d0
        for d in (0.0, pl.d0 / 10, pl.d0):
            assert pl.invert(pl.mean_rssi(np.array([d])))[0] == pl.d0

    def test_round_trip_identity_above_d0(self):
        pl = PathLossModel(shadowing_db=2.0)
        d = np.geomspace(pl.d0, 10.0, 50)
        back = pl.invert(pl.mean_rssi(d))
        np.testing.assert_allclose(back, d, rtol=1e-12)

    def test_invert_never_below_d0(self):
        pl = PathLossModel()
        # absurdly strong readings (closer than the reference distance)
        strong = pl.mean_rssi(np.array([pl.d0])) + np.array([10.0, 50.0])
        assert (pl.invert(strong) >= pl.d0).all()


class TestNLOSObserveSymmetry:
    def _model(self):
        return NLOSRanging(GaussianRanging(0.02), nlos_fraction=0.5, bias_mean=0.1)

    def test_distance_matrix_draws_are_symmetric(self):
        n = 6
        rng = np.random.default_rng(0)
        pos = rng.uniform(size=(n, 2))
        d = np.linalg.norm(pos[:, None] - pos[None, :], axis=-1)
        obs = self._model().observe(d, np.random.default_rng(1))
        np.testing.assert_array_equal(obs, obs.T)

    def test_square_batch_with_nonzero_diagonal_not_symmetrized(self):
        # a coincidentally square batch of independent links must keep
        # per-entry draws — symmetrizing it would corrupt half the data
        d = np.full((4, 4), 0.3)
        obs = self._model().observe(d, np.random.default_rng(2))
        assert not np.array_equal(obs, obs.T)

    def test_draw_order_is_bit_reproducible(self):
        d = np.linspace(0.05, 0.4, 12).reshape(3, 4)
        a = self._model().observe(d, np.random.default_rng(3))
        b = self._model().observe(d, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


# --------------------------------------------------------------------- #
# ChannelRSSIRanging
# --------------------------------------------------------------------- #
class TestChannelRSSIRanging:
    def test_matched_instance_is_bitwise_rssi(self):
        pl = PathLossModel(shadowing_db=3.0)
        chan = ChannelRSSIRanging(pl)
        plain = RSSIRanging(pl)
        obs = np.geomspace(1e-3, 2.0, 30)
        cand = np.geomspace(1e-3, 2.0, 30)
        np.testing.assert_array_equal(
            chan.log_likelihood(obs[:, None], cand[None, :]),
            plain.log_likelihood(obs[:, None], cand[None, :]),
        )

    def test_matched_observe_distribution_matches_rssi(self):
        # draws go through dB space (sign-flipped shadowing), so only the
        # distribution — log-normal around d with sigma log_sigma — matches
        pl = PathLossModel(shadowing_db=3.0)
        chan = ChannelRSSIRanging(pl)
        d = np.full(20000, 0.5)
        obs = chan.observe(d, np.random.default_rng(7))
        logs = np.log(obs / 0.5)
        assert abs(logs.mean()) < 0.01
        assert abs(logs.std() - chan.log_sigma) < 0.01

    def test_miscalibrated_observe_slope(self):
        # log(d_obs/d0) should average (eta/eta0) * log(d/d0)
        pl = PathLossModel(path_loss_exponent=4.0, shadowing_db=2.0)
        chan = ChannelRSSIRanging(pl, inversion_exponent=3.0)
        d = np.full(20000, 0.3)
        obs = chan.observe(d, np.random.default_rng(11))
        mean_log = np.log(obs / pl.d0).mean()
        expected = (4.0 / 3.0) * np.log(0.3 / pl.d0)
        assert abs(mean_log - expected) < 0.02

    def test_with_exponent_keeps_inversion(self):
        chan = ChannelRSSIRanging(
            PathLossModel(path_loss_exponent=4.0, shadowing_db=2.0),
            inversion_exponent=3.0,
        )
        hyp = chan.with_exponent(2.5)
        assert hyp.path_loss.path_loss_exponent == 2.5
        assert hyp.inversion_exponent == 3.0
        assert chan.path_loss.path_loss_exponent == 4.0

    def test_zero_shadowing_rejected(self):
        with pytest.raises(ValueError):
            ChannelRSSIRanging(PathLossModel(shadowing_db=0.0))


# --------------------------------------------------------------------- #
# LatentNLOSRanging
# --------------------------------------------------------------------- #
class TestLatentNLOSRanging:
    def _pair(self, eps=0.2):
        base = ChannelRSSIRanging(PathLossModel(shadowing_db=2.0))
        return (
            LatentNLOSRanging(base, eps, 0.1),
            RobustRanging(base, eps, 0.1),
        )

    def test_likelihood_inherited_bitwise_from_robust(self):
        latent, robust = self._pair()
        obs = np.geomspace(1e-3, 3.0, 25)
        cand = np.geomspace(1e-3, 3.0, 25)
        np.testing.assert_array_equal(
            latent.log_likelihood(obs[:, None], cand[None, :]),
            robust.log_likelihood(obs[:, None], cand[None, :]),
        )

    @pytest.mark.parametrize("shadowing", [1.0, 2.0, 4.0])
    @pytest.mark.parametrize("eta", [2.0, 3.0, 4.0])
    @pytest.mark.parametrize("eps", [0.01, 0.2, 0.8])
    def test_responsibilities_are_proper(self, shadowing, eta, eps):
        # across the (sigma, eta, NLOS-fraction) grid the per-element
        # posterior must be a probability: in [0, 1], never NaN
        model = LatentNLOSRanging(
            ChannelRSSIRanging(
                PathLossModel(
                    path_loss_exponent=eta, shadowing_db=shadowing
                ),
                inversion_exponent=3.0,
            ),
            eps,
            0.1,
        )
        grid = np.concatenate([[0.0, 1e-300], np.geomspace(1e-9, 1e150, 25)])
        with np.errstate(all="ignore"):
            r = model.responsibilities(grid[:, None], grid[None, :])
        assert not np.isnan(r).any()
        assert (r >= 0.0).all() and (r <= 1.0).all()

    def test_dead_tails_return_prior(self):
        # both mixture components underflow for an observation far BELOW
        # the candidate (the EMG has no left tail either) — the data is
        # uninformative there, so the prior must come back
        model = LatentNLOSRanging(GaussianRanging(0.01), 0.2, 0.1)
        with np.errstate(all="ignore"):
            r = model.responsibilities(np.array([0.0]), np.array([1e160]))
        assert r[0] == pytest.approx(0.2)

    def test_large_positive_residual_is_nlos(self):
        model = LatentNLOSRanging(GaussianRanging(0.01), 0.2, 0.1)
        with np.errstate(all="ignore"):
            r = model.responsibilities(np.array([2.0]), np.array([0.5]))
        assert r[0] > 0.99

    def test_with_fraction_shares_base(self):
        latent, _ = self._pair(eps=0.05)
        updated = latent.with_fraction(0.4)
        assert updated.base is latent.base
        assert updated.nlos_fraction == 0.4
        assert updated.bias_mean == latent.bias_mean
        assert latent.nlos_fraction == 0.05


# --------------------------------------------------------------------- #
# scoring helpers
# --------------------------------------------------------------------- #
class TestExpectedLoglik:
    def test_floored_loglik_is_finite(self):
        model = GaussianRanging(1e-6)
        ll = floored_loglik(model, 0.5, np.array([0.0, 0.5, 1e300]))
        assert np.isfinite(ll).all()

    def test_expected_logliks_match_manual(self):
        model = GaussianRanging(0.05)
        d = np.array([0.1, 0.5, 0.9])
        belief = np.array([0.2, 0.5, 0.3])
        ll = floored_loglik(model, 0.45, d)
        assert expected_anchor_loglik(model, 0.45, d, belief) == pytest.approx(
            float(belief @ ll)
        )
        cell = np.abs(d[:, None] - d[None, :]) + 0.05
        llp = floored_loglik(model, 0.2, cell)
        assert expected_pairwise_loglik(
            model, 0.2, cell, belief, belief
        ) == pytest.approx(float(belief @ llp @ belief))


# --------------------------------------------------------------------- #
# joint localizer
# --------------------------------------------------------------------- #
def _joint_scenario(seed=3, true_eta=4.0):
    cfg = ScenarioConfig(
        n_nodes=20,
        anchor_ratio=0.2,
        radio_range=0.35,
        ranging="rssi",
        pk_error=None,
        channel=ChannelConfig(
            path_loss_exponent=true_eta,
            assumed_exponent=3.0,
            shadowing_db=2.0,
        ),
    )
    return build_scenario(cfg, seed)


def _joint_localizer(prior, **overrides):
    kwargs = dict(
        grid=GridBPConfig(grid_size=8, max_iterations=10, backend="batched")
    )
    kwargs.update(overrides)
    return JointChannelLocalizer(prior=prior, config=JointChannelConfig(**kwargs))


class TestJointChannelLocalizer:
    def test_posterior_contract_and_bit_reproducibility(self):
        net, ms, prior = _joint_scenario()
        loc = _joint_localizer(prior)
        r1 = loc.localize(ms)
        r2 = loc.localize(ms)
        np.testing.assert_array_equal(r1.estimates, r2.estimates)
        assert r1.extras["eta_scores"] == r2.extras["eta_scores"]
        q = np.asarray(r1.extras["eta_posterior"])
        assert q.sum() == pytest.approx(1.0)
        assert (q >= 0).all()
        assert r1.extras["eta_map"] in r1.extras["eta_support"]
        lo, hi = min(r1.extras["eta_support"]), max(r1.extras["eta_support"])
        assert lo <= r1.extras["eta_mean"] <= hi
        for i, j, resp in r1.extras["link_responsibilities"]:
            assert 0.0 <= resp <= 1.0
        assert 0.0 < r1.extras["nlos_fraction"] < 1.0
        assert r1.localized_mask[~ms.anchor_mask].all()

    def test_sparse_scoring_matches_dense(self):
        net, ms, prior = _joint_scenario()
        sparse = _joint_localizer(prior).localize(ms)
        dense = _joint_localizer(prior, score_cells=None).localize(ms)
        assert sparse.extras["eta_map"] == dense.extras["eta_map"]
        np.testing.assert_allclose(
            sparse.extras["eta_scores"], dense.extras["eta_scores"], rtol=1e-6
        )

    def test_recovers_true_exponent(self):
        net, ms, prior = _joint_scenario(seed=5, true_eta=4.0)
        res = _joint_localizer(prior).localize(ms)
        assert res.extras["eta_map"] >= 3.5

    def test_non_rssi_ranging_rejected(self):
        cfg = ScenarioConfig(
            n_nodes=16, anchor_ratio=0.25, radio_range=0.35, ranging="toa"
        )
        net, ms, prior = build_scenario(cfg, 1)
        with pytest.raises(ValueError, match="RSSI"):
            _joint_localizer(prior).localize(ms)

    def test_nlos_off_skips_responsibilities(self):
        net, ms, prior = _joint_scenario()
        res = _joint_localizer(prior, estimate_nlos=False).localize(ms)
        assert res.extras["link_responsibilities"] == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            JointChannelConfig(eta_support=())
        with pytest.raises(ValueError):
            JointChannelConfig(eta_support=(2.0, 2.0))
        with pytest.raises(ValueError):
            JointChannelConfig(em_iterations=0)
        with pytest.raises(ValueError):
            JointChannelConfig(nlos_fraction_bounds=(0.5, 0.2))
        with pytest.raises(ValueError):
            JointChannelConfig(score_cells=0)


# --------------------------------------------------------------------- #
# MCMC latent-eta Gibbs step
# --------------------------------------------------------------------- #
@pytest.mark.mcmc
class TestMCMCLatentEta:
    def _scenario(self):
        cfg = ScenarioConfig(
            n_nodes=16,
            anchor_ratio=0.25,
            radio_range=0.4,
            ranging="rssi",
            pk_error=None,
            channel=ChannelConfig(
                path_loss_exponent=4.0, assumed_exponent=3.0, shadowing_db=2.0
            ),
        )
        return build_scenario(cfg, 5)

    def test_disabled_by_default(self):
        net, ms, prior = self._scenario()
        cfg = MCMCConfig(n_chains=1, n_samples=10, burn_in=5)
        res = MCMCLocalizer(prior=prior, config=cfg).localize(
            ms, np.random.default_rng(0)
        )
        assert "eta_map" not in res.extras

    def test_gibbs_posterior_contract(self):
        net, ms, prior = self._scenario()
        cfg = MCMCConfig(
            n_chains=2, n_samples=20, burn_in=10,
            eta_support=(2.0, 3.0, 4.0),
        )
        r1 = MCMCLocalizer(prior=prior, config=cfg).localize(
            ms, np.random.default_rng(1)
        )
        r2 = MCMCLocalizer(prior=prior, config=cfg).localize(
            ms, np.random.default_rng(1)
        )
        np.testing.assert_array_equal(r1.estimates, r2.estimates)
        assert r1.extras["eta_posterior"] == r2.extras["eta_posterior"]
        q = np.asarray(r1.extras["eta_posterior"])
        assert q.sum() == pytest.approx(1.0)
        assert r1.extras["eta_map"] in (2.0, 3.0, 4.0)
        assert 2.0 <= r1.extras["eta_mean"] <= 4.0

    def test_non_rssi_rejected(self):
        cfg = ScenarioConfig(
            n_nodes=16, anchor_ratio=0.25, radio_range=0.4, ranging="gaussian"
        )
        net, ms, prior = build_scenario(cfg, 2)
        mcfg = MCMCConfig(n_chains=1, n_samples=10, burn_in=5,
                          eta_support=(2.0, 3.0))
        with pytest.raises(ValueError):
            MCMCLocalizer(prior=prior, config=mcfg).localize(
                ms, np.random.default_rng(0)
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MCMCConfig(eta_support=())
        with pytest.raises(ValueError):
            MCMCConfig(eta_support=(3.0, 3.0))


# --------------------------------------------------------------------- #
# wire codecs
# --------------------------------------------------------------------- #
class TestRangingWireCodecs:
    MODELS = [
        TOARanging(0.01, mean_delay=0.002, speed=2.0),
        RSSIRanging(PathLossModel(shadowing_db=3.0)),
        ChannelRSSIRanging(
            PathLossModel(path_loss_exponent=4.0, shadowing_db=2.0),
            inversion_exponent=3.0,
        ),
        NLOSRanging(GaussianRanging(0.02), 0.2, 0.1),
        RobustRanging(RSSIRanging(PathLossModel(shadowing_db=2.5)), 0.1, 0.15),
        LatentNLOSRanging(
            ChannelRSSIRanging(
                PathLossModel(shadowing_db=2.0), inversion_exponent=3.5
            ),
            0.05,
            0.12,
        ),
    ]

    @pytest.mark.parametrize(
        "model", MODELS, ids=[type(m).__name__ for m in MODELS]
    )
    def test_round_trip_preserves_likelihood(self, model):
        wire = json.loads(json.dumps(_ranging_to_dict(model)))
        back = _ranging_from_dict(wire)
        assert type(back) is type(model)
        obs = np.array([0.05, 0.1, 0.2])
        cand = np.array([0.04, 0.12, 0.3])
        np.testing.assert_array_equal(
            model.log_likelihood(obs[:, None], cand[None, :]),
            back.log_likelihood(obs[:, None], cand[None, :]),
        )

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="unknown ranging wire type"):
            _ranging_from_dict({"type": "mystery"})

    def test_measurements_round_trip_with_channel_model(self):
        from repro.io.serialize import (
            measurements_from_dict,
            measurements_to_dict,
        )

        net, ms, prior = _joint_scenario()
        back = measurements_from_dict(
            json.loads(json.dumps(measurements_to_dict(ms)))
        )
        assert type(back.ranging) is type(ms.ranging)
        np.testing.assert_array_equal(back.adjacency, ms.adjacency)
        m = np.isfinite(ms.observed_distances)
        np.testing.assert_allclose(
            back.observed_distances[m], ms.observed_distances[m]
        )


# --------------------------------------------------------------------- #
# config plumbing
# --------------------------------------------------------------------- #
class TestChannelConfig:
    def test_round_trip(self):
        cfg = ChannelConfig(
            path_loss_exponent=3.5,
            assumed_exponent=3.0,
            shadowing_db=2.0,
            eta_support=(2.0, 3.0, 4.0),
        )
        back = ChannelConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert back == cfg

    def test_scenario_round_trip_with_channel(self):
        cfg = ScenarioConfig(
            n_nodes=20,
            ranging="rssi",
            channel=ChannelConfig(path_loss_exponent=3.5, assumed_exponent=3.0),
        )
        back = ScenarioConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert back.channel == cfg.channel

    def test_channel_requires_rssi(self):
        with pytest.raises(ValueError):
            ScenarioConfig(ranging="toa", channel=ChannelConfig())

    def test_make_ranging_is_matched_oracle(self):
        cfg = ChannelConfig(path_loss_exponent=4.0, assumed_exponent=3.0)
        model = cfg.make_ranging()
        assert isinstance(model, ChannelRSSIRanging)
        assert model.path_loss.path_loss_exponent == 4.0
        assert model.inversion_exponent == 3.0
