"""Inference-engine tests: CPDs, BNs, variable elimination, BP, junction tree.

The central validation strategy: random small Bayesian networks are built
with hypothesis, and every inference engine must agree with brute-force
enumeration (the oracle).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesnet.beliefprop import BeliefPropagation
from repro.bayesnet.cpd import TabularCPD
from repro.bayesnet.discrete_bn import BayesianNetwork
from repro.bayesnet.elimination import (
    min_degree_order,
    min_fill_order,
    variable_elimination,
)
from repro.bayesnet.factor import DiscreteFactor
from repro.bayesnet.graph import FactorGraph
from repro.bayesnet.junction import JunctionTree


def random_chain_bn(rng, n_vars=4, card=2):
    """X0 -> X1 -> ... chain with random CPDs."""
    cpds = [TabularCPD(0, card, _rand_dist(rng, card))]
    for i in range(1, n_vars):
        table = np.stack([_rand_dist(rng, card) for _ in range(card)], axis=1)
        cpds.append(TabularCPD(i, card, table, evidence=[i - 1], evidence_cards=[card]))
    return BayesianNetwork(cpds)


def random_tree_bn(rng, n_vars=5, card=2):
    """Random-tree-structured BN: parent(i) uniform among earlier nodes."""
    cpds = [TabularCPD(0, card, _rand_dist(rng, card))]
    for i in range(1, n_vars):
        p = int(rng.integers(0, i))
        table = np.stack([_rand_dist(rng, card) for _ in range(card)], axis=1)
        cpds.append(TabularCPD(i, card, table, evidence=[p], evidence_cards=[card]))
    return BayesianNetwork(cpds)


def _rand_dist(rng, card):
    p = rng.uniform(0.1, 1.0, size=card)
    return p / p.sum()


# --------------------------------------------------------------------- #
# CPDs
# --------------------------------------------------------------------- #
class TestTabularCPD:
    def test_uniform(self):
        cpd = TabularCPD.uniform("x", 4)
        np.testing.assert_allclose(cpd.table, 0.25)

    def test_from_prior(self):
        cpd = TabularCPD.from_prior("x", [0.2, 0.8])
        assert cpd.cardinality == 2

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            TabularCPD("x", 2, np.array([0.5, 0.6]))

    def test_rejects_self_parent(self):
        with pytest.raises(ValueError):
            TabularCPD("x", 2, np.ones((2, 2)) / 2, evidence=["x"], evidence_cards=[2])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            TabularCPD("x", 2, np.ones(3) / 3)

    def test_to_factor(self):
        table = np.array([[0.9, 0.4], [0.1, 0.6]])
        cpd = TabularCPD("y", 2, table, evidence=["x"], evidence_cards=[2])
        f = cpd.to_factor()
        assert f.variables == ("y", "x")
        np.testing.assert_allclose(f.values, table)

    def test_sample_distribution(self):
        rng = np.random.default_rng(0)
        cpd = TabularCPD.from_prior("x", [0.3, 0.7])
        draws = [cpd.sample({}, rng) for _ in range(3000)]
        assert np.mean(draws) == pytest.approx(0.7, abs=0.03)


# --------------------------------------------------------------------- #
# BayesianNetwork
# --------------------------------------------------------------------- #
class TestBayesianNetwork:
    def test_topological_order(self):
        bn = random_chain_bn(np.random.default_rng(0), 4)
        order = bn.topological_order()
        assert order.index(0) < order.index(1) < order.index(3)

    def test_cycle_detection(self):
        a = TabularCPD("a", 2, np.ones((2, 2)) / 2, evidence=["b"], evidence_cards=[2])
        b = TabularCPD("b", 2, np.ones((2, 2)) / 2, evidence=["a"], evidence_cards=[2])
        with pytest.raises(ValueError):
            BayesianNetwork([a, b]).validate()

    def test_missing_parent(self):
        a = TabularCPD("a", 2, np.ones((2, 2)) / 2, evidence=["z"], evidence_cards=[2])
        with pytest.raises(ValueError):
            BayesianNetwork([a]).validate()

    def test_duplicate_cpd(self):
        bn = BayesianNetwork([TabularCPD.uniform("a", 2)])
        with pytest.raises(ValueError):
            bn.add_cpd(TabularCPD.uniform("a", 2))

    def test_joint_sums_to_one(self):
        bn = random_tree_bn(np.random.default_rng(1), 4)
        total = 0.0
        import itertools

        for states in itertools.product(range(2), repeat=4):
            total += bn.joint_probability(dict(enumerate(states)))
        assert total == pytest.approx(1.0)

    def test_sampling_matches_marginal(self):
        rng = np.random.default_rng(2)
        bn = random_chain_bn(rng, 3)
        marg = bn.brute_force_marginal(2)
        samples = bn.sample(4000, rng=3)
        freq = np.bincount([s[2] for s in samples], minlength=2) / 4000
        np.testing.assert_allclose(freq, marg.values, atol=0.03)

    def test_brute_force_with_evidence(self):
        bn = random_chain_bn(np.random.default_rng(4), 3)
        post = bn.brute_force_marginal(0, evidence={2: 1})
        assert post.values.sum() == pytest.approx(1.0)

    def test_brute_force_rejects_query_in_evidence(self):
        bn = random_chain_bn(np.random.default_rng(4), 3)
        with pytest.raises(ValueError):
            bn.brute_force_marginal(0, evidence={0: 1})


# --------------------------------------------------------------------- #
# Variable elimination vs brute force
# --------------------------------------------------------------------- #
class TestVariableElimination:
    @given(st.integers(0, 200), st.integers(3, 6), st.integers(2, 3))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force(self, seed, n_vars, card):
        rng = np.random.default_rng(seed)
        bn = random_tree_bn(rng, n_vars, card)
        q = int(rng.integers(0, n_vars))
        result = variable_elimination(bn.to_factors(), [q])
        oracle = bn.brute_force_marginal(q)
        np.testing.assert_allclose(result.values, oracle.values, atol=1e-9)

    @given(st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force_with_evidence(self, seed):
        rng = np.random.default_rng(seed)
        bn = random_tree_bn(rng, 5, 2)
        q = 0
        ev = {4: int(rng.integers(0, 2))}
        result = variable_elimination(bn.to_factors(), [q], evidence=ev)
        oracle = bn.brute_force_marginal(q, evidence=ev)
        np.testing.assert_allclose(result.values, oracle.values, atol=1e-9)

    def test_joint_query(self):
        bn = random_chain_bn(np.random.default_rng(7), 4)
        joint = variable_elimination(bn.to_factors(), [0, 3])
        assert joint.variables == (0, 3)
        assert joint.values.sum() == pytest.approx(1.0)
        m0 = variable_elimination(bn.to_factors(), [0])
        np.testing.assert_allclose(joint.marginalize([3]).values, m0.values, atol=1e-9)

    def test_explicit_order(self):
        bn = random_chain_bn(np.random.default_rng(8), 4)
        r1 = variable_elimination(bn.to_factors(), [0], order=[1, 2, 3])
        r2 = variable_elimination(bn.to_factors(), [0], order=[3, 2, 1])
        np.testing.assert_allclose(r1.values, r2.values, atol=1e-12)

    def test_bad_order_rejected(self):
        bn = random_chain_bn(np.random.default_rng(8), 3)
        with pytest.raises(ValueError):
            variable_elimination(bn.to_factors(), [0], order=[1])

    def test_query_evidence_overlap_rejected(self):
        bn = random_chain_bn(np.random.default_rng(8), 3)
        with pytest.raises(ValueError):
            variable_elimination(bn.to_factors(), [0], evidence={0: 0})

    def test_unknown_query_rejected(self):
        bn = random_chain_bn(np.random.default_rng(8), 3)
        with pytest.raises(ValueError):
            variable_elimination(bn.to_factors(), ["nope"])

    def test_orderings_cover_all(self):
        bn = random_tree_bn(np.random.default_rng(9), 6)
        factors = bn.to_factors()
        for fn in (min_fill_order, min_degree_order):
            order = fn(factors, range(6))
            assert sorted(order) == list(range(6))


# --------------------------------------------------------------------- #
# Belief propagation
# --------------------------------------------------------------------- #
class TestBeliefPropagation:
    @given(st.integers(0, 200), st.integers(3, 6))
    @settings(max_examples=25, deadline=None)
    def test_exact_on_trees(self, seed, n_vars):
        rng = np.random.default_rng(seed)
        bn = random_tree_bn(rng, n_vars, 2)
        graph = FactorGraph(bn.to_factors())
        result = BeliefPropagation(graph, max_iterations=2 * n_vars + 5).run()
        assert result.converged
        for v in range(n_vars):
            oracle = bn.brute_force_marginal(v)
            np.testing.assert_allclose(result.belief(v), oracle.values, atol=1e-6)

    def test_evidence_handling(self):
        rng = np.random.default_rng(3)
        bn = random_chain_bn(rng, 4)
        graph = FactorGraph(bn.to_factors())
        ev = {3: 1}
        result = BeliefPropagation(graph, max_iterations=20).run(evidence=ev)
        oracle = bn.brute_force_marginal(0, evidence=ev)
        np.testing.assert_allclose(result.belief(0), oracle.values, atol=1e-6)
        np.testing.assert_allclose(result.belief(3), [0.0, 1.0])

    def test_loopy_converges_reasonably(self):
        # 2x2 grid MRF with moderate couplings: loopy BP should converge and
        # be close to the exact marginals.
        rng = np.random.default_rng(5)
        pair = lambda: DiscreteFactor(  # noqa: E731
            ("", ""), (2, 2), rng.uniform(0.5, 1.5, size=(2, 2))
        )
        fs = []
        edges = [(0, 1), (1, 3), (3, 2), (2, 0)]
        for i, j in edges:
            vals = rng.uniform(0.5, 1.5, size=(2, 2))
            fs.append(DiscreteFactor((i, j), (2, 2), vals))
        graph = FactorGraph(fs)
        assert not graph.is_tree()
        result = BeliefPropagation(graph, max_iterations=200, damping=0.3).run()
        assert result.converged
        exact = variable_elimination(fs, [0])
        np.testing.assert_allclose(result.belief(0), exact.values, atol=0.05)

    def test_max_product_map(self):
        rng = np.random.default_rng(6)
        bn = random_chain_bn(rng, 4)
        factors = bn.to_factors()
        graph = FactorGraph(factors)
        result = BeliefPropagation(graph, max_iterations=30, max_product=True).run()
        states = result.map_states()
        # compare against exhaustive MAP
        import itertools

        best, best_p = None, -1
        for assign in itertools.product(range(2), repeat=4):
            p = bn.joint_probability(dict(enumerate(assign)))
            if p > best_p:
                best, best_p = dict(enumerate(assign)), p
        assert states == best

    def test_residuals_monotone_ish_on_tree(self):
        bn = random_chain_bn(np.random.default_rng(8), 5)
        graph = FactorGraph(bn.to_factors())
        result = BeliefPropagation(graph, max_iterations=30).run()
        assert result.residuals[-1] < result.residuals[0]

    def test_param_validation(self):
        bn = random_chain_bn(np.random.default_rng(8), 3)
        graph = FactorGraph(bn.to_factors())
        with pytest.raises(ValueError):
            BeliefPropagation(graph, max_iterations=0)
        with pytest.raises(ValueError):
            BeliefPropagation(graph, damping=1.0)
        with pytest.raises(ValueError):
            BeliefPropagation(graph, tol=0)


# --------------------------------------------------------------------- #
# FactorGraph structure
# --------------------------------------------------------------------- #
class TestFactorGraph:
    def test_tree_detection(self):
        bn = random_chain_bn(np.random.default_rng(0), 4)
        assert FactorGraph(bn.to_factors()).is_tree()

    def test_loop_detection(self):
        fs = [
            DiscreteFactor((0, 1), (2, 2), np.ones((2, 2))),
            DiscreteFactor((1, 2), (2, 2), np.ones((2, 2))),
            DiscreteFactor((2, 0), (2, 2), np.ones((2, 2))),
        ]
        assert not FactorGraph(fs).is_tree()

    def test_components(self):
        fs = [
            DiscreteFactor((0, 1), (2, 2), np.ones((2, 2))),
            DiscreteFactor((2,), (2,), np.ones(2)),
        ]
        comps = FactorGraph(fs).components()
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2]]

    def test_inconsistent_cardinality(self):
        fs = [
            DiscreteFactor((0,), (2,), np.ones(2)),
            DiscreteFactor((0,), (3,), np.ones(3)),
        ]
        with pytest.raises(ValueError):
            FactorGraph(fs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FactorGraph([])


# --------------------------------------------------------------------- #
# Junction tree vs brute force
# --------------------------------------------------------------------- #
class TestJunctionTree:
    @given(st.integers(0, 120), st.integers(3, 5))
    @settings(max_examples=20, deadline=None)
    def test_matches_brute_force(self, seed, n_vars):
        rng = np.random.default_rng(seed)
        bn = random_tree_bn(rng, n_vars, 2)
        jt = JunctionTree(bn.to_factors())
        for v in range(n_vars):
            oracle = bn.brute_force_marginal(v)
            np.testing.assert_allclose(
                jt.query(v).values, oracle.values, atol=1e-9
            )

    def test_loopy_model_exact(self):
        # A loop (where plain BP is approximate) — junction tree stays exact.
        rng = np.random.default_rng(5)
        fs = []
        for i, j in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            fs.append(
                DiscreteFactor((i, j), (2, 2), rng.uniform(0.2, 2.0, size=(2, 2)))
            )
        jt = JunctionTree(fs)
        for v in range(4):
            exact = variable_elimination(fs, [v])
            np.testing.assert_allclose(jt.query(v).values, exact.values, atol=1e-9)

    def test_evidence(self):
        rng = np.random.default_rng(9)
        bn = random_tree_bn(rng, 5, 2)
        jt = JunctionTree(bn.to_factors())
        ev = {4: 1}
        oracle = bn.brute_force_marginal(1, evidence=ev)
        np.testing.assert_allclose(jt.query(1, evidence=ev).values, oracle.values, atol=1e-9)

    def test_evidence_validation(self):
        bn = random_chain_bn(np.random.default_rng(1), 3)
        jt = JunctionTree(bn.to_factors())
        with pytest.raises(ValueError):
            jt.query(0, evidence={0: 1})
        with pytest.raises(ValueError):
            jt.query(0, evidence={"zz": 1})
        with pytest.raises(ValueError):
            jt.query(0, evidence={2: 7})

    def test_disconnected_rejected(self):
        fs = [
            DiscreteFactor((0,), (2,), np.ones(2)),
            DiscreteFactor((1,), (2,), np.ones(2)),
        ]
        with pytest.raises(ValueError):
            JunctionTree(fs)

    def test_single_clique(self):
        f = DiscreteFactor((0, 1), (2, 2), np.array([[0.1, 0.2], [0.3, 0.4]]))
        jt = JunctionTree([f])
        np.testing.assert_allclose(jt.query(0).values, [0.3, 0.7])


# --------------------------------------------------------------------- #
# Sampling-based inference vs brute force
# --------------------------------------------------------------------- #
class TestSamplingInference:
    from repro.bayesnet.sampling import gibbs_sampling, likelihood_weighting

    def test_likelihood_weighting_matches_brute_force(self):
        from repro.bayesnet.sampling import likelihood_weighting

        rng = np.random.default_rng(11)
        bn = random_tree_bn(rng, 5, 2)
        ev = {4: 1}
        approx = likelihood_weighting(bn, 0, evidence=ev, n_samples=20000, rng=12)
        oracle = bn.brute_force_marginal(0, evidence=ev)
        np.testing.assert_allclose(approx.values, oracle.values, atol=0.03)

    def test_likelihood_weighting_no_evidence(self):
        from repro.bayesnet.sampling import likelihood_weighting

        bn = random_chain_bn(np.random.default_rng(13), 4)
        approx = likelihood_weighting(bn, 3, n_samples=20000, rng=14)
        oracle = bn.brute_force_marginal(3)
        np.testing.assert_allclose(approx.values, oracle.values, atol=0.03)

    def test_gibbs_matches_brute_force(self):
        from repro.bayesnet.sampling import gibbs_sampling

        rng = np.random.default_rng(15)
        bn = random_tree_bn(rng, 5, 2)
        ev = {4: 0}
        approx = gibbs_sampling(
            bn, 1, evidence=ev, n_samples=8000, burn_in=500, rng=16
        )
        oracle = bn.brute_force_marginal(1, evidence=ev)
        np.testing.assert_allclose(approx.values, oracle.values, atol=0.04)

    def test_gibbs_no_evidence(self):
        from repro.bayesnet.sampling import gibbs_sampling

        bn = random_chain_bn(np.random.default_rng(17), 3)
        approx = gibbs_sampling(bn, 2, n_samples=8000, burn_in=500, rng=18)
        oracle = bn.brute_force_marginal(2)
        np.testing.assert_allclose(approx.values, oracle.values, atol=0.04)

    def test_samplers_reproducible(self):
        from repro.bayesnet.sampling import gibbs_sampling, likelihood_weighting

        bn = random_chain_bn(np.random.default_rng(19), 3)
        a = likelihood_weighting(bn, 0, n_samples=500, rng=7)
        b = likelihood_weighting(bn, 0, n_samples=500, rng=7)
        np.testing.assert_array_equal(a.values, b.values)
        c = gibbs_sampling(bn, 0, n_samples=300, burn_in=50, rng=7)
        d = gibbs_sampling(bn, 0, n_samples=300, burn_in=50, rng=7)
        np.testing.assert_array_equal(c.values, d.values)

    def test_validation(self):
        from repro.bayesnet.sampling import gibbs_sampling, likelihood_weighting

        bn = random_chain_bn(np.random.default_rng(20), 3)
        with pytest.raises(ValueError):
            likelihood_weighting(bn, 0, evidence={0: 1})
        with pytest.raises(ValueError):
            likelihood_weighting(bn, 0, n_samples=0)
        with pytest.raises(ValueError):
            gibbs_sampling(bn, 0, evidence={0: 1})
        with pytest.raises(ValueError):
            gibbs_sampling(bn, 0, burn_in=-1)
        with pytest.raises(ValueError):
            gibbs_sampling(bn, 0, evidence={0: 0, 1: 0, 2: 0})
