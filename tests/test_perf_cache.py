"""Performance-layer regression tests.

Three guarantees from the vectorized-kernels + cross-trial-cache PR:

* the optimized solver hot paths (`optimized=True`, the default) are
  **bit-identical** to the retained reference implementations across
  schedules, estimators, and measurement modalities;
* a warm :class:`~repro.core.potentials.PotentialCacheRegistry` (second
  trial of a sweep, cache hits) produces byte-identical results to a cold
  run, in-process and across `run_trials` worker counts;
* the quadrature-normalization and NaN-reweighting bugfixes hold (each
  test fails on the pre-fix code).

The ``perf``-marked smoke lane checks the cache actually engages on a
2-trial sweep; it runs in the default suite.
"""

import dataclasses as dc

import numpy as np
import pytest

from repro.core import GridBPConfig, GridBPLocalizer, NBPConfig, NBPLocalizer
from repro.core.potentials import (
    _GH_NODES,
    _GH_WEIGHTS,
    PotentialCacheRegistry,
    _blurred_likelihood,
    shared_registry,
)
from repro.measurement import BearingModel, GaussianRanging, observe
from repro.network import NetworkConfig, UnitDiskRadio, generate_network
from repro.obs import Tracer
from repro.parallel import run_trials
from repro.priors import UniformPrior


def _scenario(seed=11, obs_seed=12, ranging=True, bearings=False, n=25):
    net = generate_network(
        NetworkConfig(
            n_nodes=n,
            anchor_ratio=0.2,
            radio=UnitDiskRadio(0.35),
            require_connected=True,
        ),
        rng=seed,
    )
    ms = observe(
        net,
        GaussianRanging(0.02) if ranging else None,
        rng=obs_seed,
        bearings=BearingModel(0.1) if bearings else None,
    )
    return net, ms


BASE_CFG = GridBPConfig(grid_size=10, max_iterations=8, tol=1e-6)


def _beliefs_equal(a, b) -> bool:
    return all(
        np.array_equal(a.extras["beliefs"][u], b.extras["beliefs"][u])
        for u in a.extras["beliefs"]
    )


class TestOptimizedBitIdentity:
    """optimized=True must reproduce the reference path bit-for-bit."""

    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"schedule": "serial"},
            {"max_product": True, "estimator": "map"},
            {"damping": 0.0},
            {"record_trace": True},
            {"use_connectivity_in_ranging": False},
        ],
        ids=["sync", "serial", "max-product", "undamped", "traced", "no-conn"],
    )
    @pytest.mark.parametrize("ranging", [True, False], ids=["ranging", "conn-only"])
    def test_matches_baseline(self, overrides, ranging):
        _, ms = _scenario(ranging=ranging)
        results = {}
        for optimized in (True, False):
            shared_registry().clear()
            cfg = dc.replace(BASE_CFG, optimized=optimized, **overrides)
            results[optimized] = GridBPLocalizer(config=cfg).localize(ms)
        a, b = results[True], results[False]
        assert np.array_equal(a.estimates, b.estimates)
        assert _beliefs_equal(a, b)
        assert a.n_iterations == b.n_iterations
        assert a.messages_sent == b.messages_sent
        assert a.bytes_sent == b.bytes_sent

    def test_matches_baseline_with_bearings(self):
        # AoA edges carry asymmetric per-edge operators — the batched
        # mat-mat path must group (or skip) them without mixing slots.
        _, ms = _scenario(seed=7, obs_seed=8, bearings=True, n=20)
        cfg = dc.replace(BASE_CFG, max_iterations=6)
        shared_registry().clear()
        a = GridBPLocalizer(config=cfg).localize(ms)
        shared_registry().clear()
        b = GridBPLocalizer(config=dc.replace(cfg, optimized=False)).localize(ms)
        assert np.array_equal(a.estimates, b.estimates)
        assert _beliefs_equal(a, b)


class TestCacheRegistry:
    def test_warm_run_bit_identical_to_cold(self):
        _, ms = _scenario()
        shared_registry().clear()
        cold = GridBPLocalizer(config=BASE_CFG).localize(ms)
        assert shared_registry().stats()["hits"] == 0
        warm = GridBPLocalizer(config=BASE_CFG).localize(ms)
        assert shared_registry().stats()["hits"] >= 1
        assert np.array_equal(cold.estimates, warm.estimates)
        assert _beliefs_equal(cold, warm)

    def test_warm_matches_uncached_solver(self):
        _, ms = _scenario()
        shared_registry().clear()
        GridBPLocalizer(config=BASE_CFG).localize(ms)  # warm the registry
        warm = GridBPLocalizer(config=BASE_CFG).localize(ms)
        nocache = GridBPLocalizer(
            config=dc.replace(BASE_CFG, shared_cache=False)
        ).localize(ms)
        assert np.array_equal(warm.estimates, nocache.estimates)
        assert _beliefs_equal(warm, nocache)

    def test_distinct_models_never_share_entries(self):
        reg = PotentialCacheRegistry()
        from repro.core.grid import Grid2D

        grid = Grid2D(8, 8, 1.0, 1.0)
        a = reg.ranging_cache(grid, GaussianRanging(0.02), None, 0.0)
        b = reg.ranging_cache(grid, GaussianRanging(0.03), None, 0.0)
        c = reg.ranging_cache(grid, GaussianRanging(0.02), None, 0.1)
        same = reg.ranging_cache(grid, GaussianRanging(0.02), None, 0.0)
        assert a is not b and a is not c
        assert same is a
        assert reg.stats() == {
            "hits": 1,
            "misses": 3,
            "ranging_entries": 3,
            "pairwise_entries": 1,
            "bytes": reg.nbytes,
        }

    def test_eviction_bound_holds(self):
        reg = PotentialCacheRegistry(max_entries=2)
        from repro.core.grid import Grid2D

        grid = Grid2D(6, 6, 1.0, 1.0)
        for sigma in (0.01, 0.02, 0.03, 0.04):
            reg.ranging_cache(grid, GaussianRanging(sigma), None, 0.0)
        assert reg.stats()["ranging_entries"] == 2

    def test_lru_eviction_order(self):
        # Touching an entry must refresh its recency: after A, B, touch-A,
        # C on a 2-entry registry, B (the stalest) is the one evicted.
        reg = PotentialCacheRegistry(max_entries=2)
        from repro.core.grid import Grid2D

        grid = Grid2D(6, 6, 1.0, 1.0)
        a = reg.ranging_cache(grid, GaussianRanging(0.01), None, 0.0)
        reg.ranging_cache(grid, GaussianRanging(0.02), None, 0.0)  # B
        assert reg.ranging_cache(grid, GaussianRanging(0.01), None, 0.0) is a
        reg.ranging_cache(grid, GaussianRanging(0.03), None, 0.0)  # C evicts B
        assert reg.ranging_cache(grid, GaussianRanging(0.01), None, 0.0) is a
        hits = reg.hits
        reg.ranging_cache(grid, GaussianRanging(0.02), None, 0.0)  # B rebuilt
        assert reg.hits == hits  # the re-request was a miss: B was evicted
        assert reg.stats()["ranging_entries"] == 2

    def test_byte_accounting_tracks_residency(self):
        reg = PotentialCacheRegistry(max_entries=2)
        from repro.core.grid import Grid2D

        grid = Grid2D(6, 6, 1.0, 1.0)
        assert reg.nbytes == 0
        a = reg.ranging_cache(grid, GaussianRanging(0.01), None, 0.0)
        pairwise = grid.pairwise_center_distances()
        assert reg.nbytes == a.nbytes + pairwise.nbytes
        b = reg.ranging_cache(grid, GaussianRanging(0.02), None, 0.0)
        two = reg.nbytes
        assert two == a.nbytes + b.nbytes + pairwise.nbytes
        c = reg.ranging_cache(grid, GaussianRanging(0.03), None, 0.0)  # evicts a
        assert reg.nbytes == b.nbytes + c.nbytes + pairwise.nbytes
        assert reg.stats()["bytes"] == reg.nbytes
        reg.clear()
        assert reg.nbytes == 0 and reg.stats()["bytes"] == 0

    def test_unfingerprintable_model_gets_private_cache(self):
        class ArrayStateRanging(GaussianRanging):
            def __init__(self, sigma):
                super().__init__(sigma)
                self.table = np.arange(4)  # non-scalar state

        reg = PotentialCacheRegistry()
        from repro.core.grid import Grid2D

        grid = Grid2D(6, 6, 1.0, 1.0)
        a = reg.ranging_cache(grid, ArrayStateRanging(0.02), None, 0.0)
        b = reg.ranging_cache(grid, ArrayStateRanging(0.02), None, 0.0)
        assert a is not b
        assert reg.stats()["ranging_entries"] == 0


def _registry_trial(seed: int) -> dict:
    """Picklable trial: localize a seeded network, return exact floats."""
    net = generate_network(
        NetworkConfig(
            n_nodes=16,
            anchor_ratio=0.25,
            radio=UnitDiskRadio(0.45),
            require_connected=True,
        ),
        rng=seed,
    )
    ms = observe(net, GaussianRanging(0.05), rng=seed + 1)
    result = GridBPLocalizer(
        config=GridBPConfig(grid_size=8, max_iterations=4, tol=1e-9)
    ).localize(ms)
    return {
        "estimates": result.estimates.tolist(),
        "beliefs": {
            int(u): b.tolist() for u, b in result.extras["beliefs"].items()
        },
    }


class TestCacheAcrossTrials:
    def test_second_trial_warm_equals_isolated_cold_runs(self):
        seeds_master = 97
        from repro.utils.rng import child_seed_ints

        seeds = child_seed_ints(seeds_master, 2)
        cold = []
        for s in seeds:
            shared_registry().clear()  # every trial sees a cold registry
            cold.append(_registry_trial(s))
        shared_registry().clear()
        warm = run_trials(_registry_trial, 2, seed=seeds_master)
        # trial 2 ran against the registry trial 1 warmed — results must
        # still be byte-identical to its isolated cold run
        assert shared_registry().stats()["hits"] >= 1
        assert warm == cold

    @pytest.mark.slow
    def test_worker_counts_agree(self):
        shared_registry().clear()
        serial = run_trials(_registry_trial, 2, seed=97, n_workers=1)
        pooled = run_trials(_registry_trial, 2, seed=97, n_workers=2)
        assert serial == pooled


class TestFingerprintsUnderBatchedAccess:
    """Fingerprint semantics when one warm registry serves a whole batch.

    A batched ``localize_batch`` group hits the shared registry once per
    trial during preparation: equal-state models must *collide* onto one
    entry (that is the point of the fingerprint), and unfingerprintable
    models must each get a private cache — in both cases bit-identical to
    the cache-less sequential run.
    """

    def _ms_list(self, ranging_factory, n_trials=3):
        out = []
        for k in range(n_trials):
            net = generate_network(
                NetworkConfig(
                    n_nodes=16,
                    anchor_ratio=0.25,
                    radio=UnitDiskRadio(0.45),
                    require_connected=True,
                ),
                rng=300 + k,
            )
            out.append(observe(net, ranging_factory(), rng=400 + k))
        return out

    def _run(self, ms_list, **cfg_overrides):
        from repro.core.bnloc import localize_batch

        cfg = dc.replace(
            BASE_CFG, max_iterations=5, backend="batched", **cfg_overrides
        )
        locs = [GridBPLocalizer(config=cfg) for _ in ms_list]
        return localize_batch(list(zip(locs, ms_list)))

    def test_equal_state_models_collide_onto_one_entry(self):
        # Distinct GaussianRanging instances with equal state fingerprint
        # identically: trial 1 builds the entry, trials 2..T reuse it.
        ms_list = self._ms_list(lambda: GaussianRanging(0.05))
        shared_registry().clear()
        batched = self._run(ms_list)
        stats = shared_registry().stats()
        assert stats["ranging_entries"] == 1
        assert stats["hits"] == len(ms_list) - 1
        private = self._run(ms_list, shared_cache=False)
        for a, b in zip(batched, private):
            assert np.array_equal(a.estimates, b.estimates)
            assert _beliefs_equal(a, b)

    def test_unfingerprintable_models_stay_private_in_batch(self):
        class ArrayStateRanging(GaussianRanging):
            def __init__(self, sigma=0.05):
                super().__init__(sigma)
                self.table = np.arange(4)  # non-scalar state

        ms_list = self._ms_list(ArrayStateRanging)
        shared_registry().clear()
        batched = self._run(ms_list)
        stats = shared_registry().stats()
        assert stats["ranging_entries"] == 0  # nothing registered...
        assert stats["misses"] == len(ms_list)  # ...every trial missed
        private = self._run(ms_list, shared_cache=False)
        for a, b in zip(batched, private):
            assert np.array_equal(a.estimates, b.estimates)
            assert _beliefs_equal(a, b)


@pytest.mark.perf
class TestPerfSmoke:
    def test_cache_hit_rate_positive_on_two_trial_sweep(self):
        shared_registry().clear()
        tracer = Tracer()
        run_trials(_registry_trial, 2, seed=5, tracer=tracer)
        snap = tracer.snapshot()
        assert snap["counters"].get("cache_hits", 0) > 0
        assert snap["gauges"]["cache_bytes"] > 0
        stats = shared_registry().stats()
        assert stats["hits"] > 0 and stats["bytes"] > 0


class TestBlurredLikelihoodRegression:
    """The 3-point Gauss–Hermite mixture must use one shared log-offset.

    The pre-fix code max-normalized each quadrature component separately,
    rescaling the mixture terms against each other.  The distortion is
    largest when the components attain different maxima — e.g. an observed
    distance beyond the farthest candidate, where each shifted component
    is clipped differently.
    """

    def test_matches_shared_offset_mixture_exactly(self):
        ranging = GaussianRanging(0.04)
        distances = np.linspace(0.0, 0.5, 160)
        obs, blur = 0.58, 0.03
        got = _blurred_likelihood(distances, obs, ranging, blur)
        lls = [
            ranging.log_likelihood(obs, np.maximum(distances + n * blur, 0.0))
            for n in _GH_NODES
        ]
        offset = max(ll.max() for ll in lls)
        want = sum(w * np.exp(ll - offset) for w, ll in zip(_GH_WEIGHTS, lls))
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("obs", [0.55, 0.58, 0.6])
    def test_matches_brute_force_marginalization(self, obs):
        ranging = GaussianRanging(0.04)
        distances = np.linspace(0.0, 0.5, 160)
        blur = 0.03
        # dense quadrature over the blur kernel: E_eps[p(obs | d + eps)]
        eps = np.linspace(-8 * blur, 8 * blur, 16001)
        pdf = np.exp(-0.5 * (eps / blur) ** 2) / (blur * np.sqrt(2 * np.pi))
        acc = np.zeros_like(distances)
        for e, p in zip(eps, pdf):
            ll = ranging.log_likelihood(obs, np.maximum(distances + e, 0.0))
            acc += p * np.exp(ll)
        brute = acc / acc.max()
        got = _blurred_likelihood(distances, obs, ranging, blur)
        got = got / got.max()
        # GH-3 tracks the integral to ~1e-2 here; the pre-fix
        # per-component normalization is off by >= 0.11.
        assert np.abs(got - brute).max() < 0.05


class _PoisonedPrior(UniformPrior):
    """NaN log-density on exactly one candidate per evaluation."""

    def log_density(self, node, points):
        out = np.array(
            super().log_density(node, points), dtype=np.float64, copy=True
        )
        out = (
            np.broadcast_to(out, (len(points),)).copy()
            if out.shape != (len(points),)
            else out
        )
        out[0] = np.nan
        return out


class TestNBPNaNWeightRegression:
    """One NaN candidate weight must not collapse NBP reweighting.

    Pre-fix, ``logw.max()`` returned NaN whenever any candidate weight was
    NaN, zeroing every weight and silently degrading resampling to uniform
    (error ~0.25 on this scenario vs ~0.06 fixed).
    """

    def _run(self, prior, tracer=None):
        net, ms = _scenario()
        cfg = NBPConfig(n_particles=60, n_iterations=4)
        result = NBPLocalizer(config=cfg, prior=prior, tracer=tracer).localize(
            ms, rng=13
        )
        err = np.linalg.norm(result.estimates - net.positions, axis=1)
        return result, float(np.nanmean(err[~net.anchor_mask]))

    def test_single_nan_candidate_keeps_accuracy(self):
        _, ms = _scenario()
        tracer = Tracer()
        result, err = self._run(
            _PoisonedPrior(ms.width, ms.height), tracer=tracer
        )
        assert np.isfinite(result.estimates).all()
        assert err < 0.12  # pre-fix collapses to ~0.25
        # the event is observable, once per poisoned reweighting
        assert tracer.snapshot()["counters"]["nan_weight_events"] > 0

    def test_healthy_weights_bypass_masked_path(self):
        _, ms = _scenario()
        tracer = Tracer()
        self._run(UniformPrior(ms.width, ms.height), tracer=tracer)
        assert "nan_weight_events" not in tracer.snapshot()["counters"]
