"""Tests for CRLB-driven anchor placement."""

import numpy as np
import pytest

from repro.experiments import greedy_crlb_anchors, mean_crlb
from repro.measurement import GaussianRanging
from repro.network import NetworkConfig, UnitDiskRadio, WSNetwork, generate_network
from repro.network.generator import select_anchors

RANGING = GaussianRanging(0.02)


@pytest.fixture(scope="module")
def net():
    return generate_network(
        NetworkConfig(
            n_nodes=40,
            anchor_ratio=0.1,
            radio=UnitDiskRadio(0.3),
            require_connected=True,
        ),
        rng=3,
    )


class TestGreedyCRLBAnchors:
    def test_places_requested_count(self, net):
        mask = greedy_crlb_anchors(
            net.positions, net.adjacency, 4, RANGING, 0.3, rng=0
        )
        assert mask.sum() == 4

    def test_beats_random_placement_in_bound(self, net):
        opt = greedy_crlb_anchors(net.positions, net.adjacency, 4, RANGING, 0.3, rng=0)
        bounds_rand = []
        for s in range(5):
            rand = select_anchors(net.positions, 4, "random", rng=s)
            bounds_rand.append(
                mean_crlb(
                    WSNetwork(net.positions, rand, net.adjacency, radio_range=0.3),
                    RANGING,
                )
            )
        bound_opt = mean_crlb(
            WSNetwork(net.positions, opt, net.adjacency, radio_range=0.3), RANGING
        )
        assert bound_opt <= min(bounds_rand) + 1e-9

    def test_monotone_improvement_with_more_anchors(self, net):
        bounds = []
        for k in (2, 4, 6):
            mask = greedy_crlb_anchors(
                net.positions, net.adjacency, k, RANGING, 0.3, rng=0
            )
            bounds.append(
                mean_crlb(
                    WSNetwork(net.positions, mask, net.adjacency, radio_range=0.3),
                    RANGING,
                )
            )
        assert bounds[0] > bounds[1] > bounds[2]

    def test_candidates_respected(self, net):
        candidates = np.arange(10)
        mask = greedy_crlb_anchors(
            net.positions,
            net.adjacency,
            3,
            RANGING,
            0.3,
            candidates=candidates,
            rng=0,
        )
        assert mask.sum() == 3
        assert not mask[10:].any()

    def test_reproducible(self, net):
        a = greedy_crlb_anchors(net.positions, net.adjacency, 3, RANGING, 0.3, rng=7)
        b = greedy_crlb_anchors(net.positions, net.adjacency, 3, RANGING, 0.3, rng=7)
        np.testing.assert_array_equal(a, b)

    def test_validation(self, net):
        with pytest.raises(ValueError):
            greedy_crlb_anchors(net.positions, net.adjacency, 0, RANGING, 0.3)
        with pytest.raises(ValueError):
            greedy_crlb_anchors(
                net.positions, net.adjacency, net.n_nodes, RANGING, 0.3
            )
        with pytest.raises(ValueError):
            greedy_crlb_anchors(
                net.positions, np.zeros((3, 3), bool), 3, RANGING, 0.3
            )
        with pytest.raises(ValueError):
            greedy_crlb_anchors(
                net.positions,
                net.adjacency,
                3,
                RANGING,
                0.3,
                candidates=np.array([999]),
            )
        with pytest.raises(ValueError):
            greedy_crlb_anchors(
                net.positions,
                net.adjacency,
                3,
                RANGING,
                0.3,
                candidates=np.array([0, 1]),
            )


class TestMeanCRLB:
    def test_finite_with_prior_regularization(self, net):
        # even with a single anchor the regularized bound is finite
        mask = np.zeros(net.n_nodes, dtype=bool)
        mask[0] = True
        b = mean_crlb(
            WSNetwork(net.positions, mask, net.adjacency, radio_range=0.3), RANGING
        )
        assert np.isfinite(b) and b > 0

    def test_decreases_with_lower_noise(self, net):
        w = WSNetwork(
            net.positions, net.anchor_mask, net.adjacency, radio_range=0.3
        )
        assert mean_crlb(w, GaussianRanging(0.01)) < mean_crlb(
            w, GaussianRanging(0.05)
        )
