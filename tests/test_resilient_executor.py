"""Tests for fail-fast trial errors and the resilient trial executor.

The serial path of :func:`run_trials` must identify a failing trial by
index and seed; :func:`run_trials_resilient` must retry on fresh seeds,
survive raising / crashing / hanging workers, and return partial results
plus a structured failure report instead of aborting the batch.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.parallel import (
    TrialBatchResult,
    TrialExecutionError,
    TrialExecutor,
    TrialFailure,
    run_trials,
    run_trials_resilient,
)
from repro.parallel.executor import _attempt_seed_table, child_seed_ints


def _ok(seed: int) -> int:
    return seed % 997


def _raise_even(seed: int) -> int:
    if seed % 2 == 0:
        raise ValueError(f"even seed {seed}")
    return seed % 997


def _sigkill_even(seed: int) -> int:
    if seed % 2 == 0:
        os.kill(os.getpid(), signal.SIGKILL)  # simulated OOM kill
    return seed % 997


def _hang_even(seed: int) -> int:
    if seed % 2 == 0:
        time.sleep(60)
    return seed % 997


def _first_even_index(seed: int, n: int) -> int:
    seeds = child_seed_ints(seed, n)
    return next(i for i, s in enumerate(seeds) if s % 2 == 0)


class TestTrialExecutionError:
    def test_serial_failure_names_index_and_seed(self):
        idx = _first_even_index(3, 8)
        seeds = child_seed_ints(3, 8)
        with pytest.raises(TrialExecutionError) as exc_info:
            run_trials(_raise_even, 8, seed=3)
        err = exc_info.value
        assert err.trial_index == idx
        assert err.trial_seed == seeds[idx]
        assert str(err.trial_seed) in str(err)
        assert "run_trials_resilient" in str(err)
        assert isinstance(err.__cause__, ValueError)

    def test_reproduce_from_reported_seed(self):
        with pytest.raises(TrialExecutionError) as exc_info:
            run_trials(_raise_even, 8, seed=3)
        with pytest.raises(ValueError):
            _raise_even(exc_info.value.trial_seed)


class TestAttemptSeeds:
    def test_attempt_zero_matches_run_trials(self):
        table = _attempt_seed_table(42, 6, max_retries=3)
        assert [row[0] for row in table] == child_seed_ints(42, 6)
        assert all(len(row) == 4 for row in table)

    def test_retry_seeds_are_fresh(self):
        table = _attempt_seed_table(42, 4, max_retries=2)
        flat = [s for row in table for s in row]
        assert len(set(flat)) == len(flat)


class TestResilientSerial:
    def test_failure_free_matches_run_trials(self):
        assert (
            run_trials_resilient(_ok, 6, seed=7).results
            == run_trials(_ok, 6, seed=7)
        )

    def test_partial_results_and_report(self):
        batch = run_trials_resilient(
            _raise_even, 8, seed=3, max_retries=0, backoff_base=0.0
        )
        assert isinstance(batch, TrialBatchResult)
        assert batch.n_trials == 8
        assert 0 < batch.n_ok < 8
        assert not batch.ok
        for f in batch.failures:
            assert isinstance(f, TrialFailure)
            assert batch.results[f.trial_index] is None
            assert f.error_type == "ValueError"
            assert "even seed" in f.message
            assert "ValueError" in f.traceback
        report = batch.report()
        assert report["n_trials"] == 8
        assert report["n_ok"] == batch.n_ok
        assert len(report["failures"]) == len(batch.failures)
        assert "trials ok" in batch.summary()
        ok_values = batch.successes()
        assert len(ok_values) == batch.n_ok
        assert all(v is not None for v in ok_values)

    def test_retry_on_fresh_seed_can_succeed(self):
        # With retries, a trial whose first seed is even gets odd retry
        # seeds with probability 1/2 each — seed 3 is chosen so at least
        # one failing trial recovers (deterministic given the seed table).
        none = run_trials_resilient(
            _raise_even, 8, seed=3, max_retries=0, backoff_base=0.0
        )
        some = run_trials_resilient(
            _raise_even, 8, seed=3, max_retries=4, backoff_base=0.0
        )
        assert some.retries > 0
        assert len(some.failures) < len(none.failures)
        for f in some.failures:
            assert f.attempts == 5
            assert len(set(f.attempt_seeds)) == 5

    def test_closures_allowed_serially(self):
        calls = []
        batch = run_trials_resilient(
            lambda s: calls.append(s) or s, 3, seed=0
        )
        assert batch.ok and len(calls) == 3

    def test_empty_batch(self):
        batch = run_trials_resilient(_ok, 0, seed=0)
        assert batch.ok and batch.results == [] and batch.n_trials == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            run_trials_resilient(_ok, -1)
        with pytest.raises(ValueError):
            run_trials_resilient(_ok, 1, n_workers=0)
        with pytest.raises(ValueError):
            run_trials_resilient(_ok, 1, max_retries=-1)
        with pytest.raises(ValueError):
            run_trials_resilient(_ok, 1, backoff_base=-0.1)
        with pytest.raises(ValueError):
            run_trials_resilient(_ok, 1, backoff_factor=0.5)
        with pytest.raises(ValueError):
            run_trials_resilient(_ok, 1, timeout=0.0)

    def test_unpicklable_fn_rejected_for_processes(self):
        with pytest.raises(TypeError, match="picklable"):
            run_trials_resilient(lambda s: s, 2, n_workers=2)


@pytest.mark.slow
class TestResilientProcesses:
    def test_failure_free_parallel_matches_run_trials(self):
        batch = run_trials_resilient(_ok, 6, seed=11, n_workers=2)
        assert batch.ok
        assert batch.results == run_trials(_ok, 6, seed=11)

    def test_killed_worker_does_not_abort_batch(self):
        batch = run_trials_resilient(
            _sigkill_even, 6, seed=3, n_workers=2, max_retries=0,
            backoff_base=0.0,
        )
        assert batch.n_trials == 6
        assert batch.failures  # some child seeds are even
        assert batch.n_ok > 0
        for f in batch.failures:
            assert f.error_type == "WorkerCrash"
            assert "exited with code" in f.message
        # survivors produced real values
        for i, r in enumerate(batch.results):
            if i not in batch.failed_indices:
                assert r is not None

    def test_worker_exception_is_structured(self):
        batch = run_trials_resilient(
            _raise_even, 6, seed=3, n_workers=2, max_retries=0,
            backoff_base=0.0,
        )
        assert batch.failures
        for f in batch.failures:
            assert f.error_type == "ValueError"
            assert "even seed" in f.message
            assert "Traceback" in f.traceback

    def test_timeout_terminates_hung_trials(self):
        t0 = time.monotonic()
        batch = run_trials_resilient(
            _hang_even, 4, seed=3, n_workers=4, max_retries=0,
            backoff_base=0.0, timeout=2.0,
        )
        elapsed = time.monotonic() - t0
        assert elapsed < 30  # far below the 60 s hang
        for f in batch.failures:
            assert f.error_type == "TrialTimeout"
            assert "wall-clock" in f.message

    def test_map_resilient(self):
        batch = TrialExecutor(n_workers=2).map_resilient(_ok, 4, seed=5)
        assert batch.ok
        assert batch.results == run_trials(_ok, 4, seed=5)


class _BatchedFn:
    """Block-protocol wrapper: ``run_batch(seeds) == [fn(s) for s in seeds]``.

    Records every batch seed vector it was handed, so tests can assert
    which attempt seeds actually entered each wave.
    """

    def __init__(self, fn):
        self.fn = fn
        self.batch_calls: list[list[int]] = []

    def __call__(self, seed: int) -> int:
        return self.fn(seed)

    def run_batch(self, seeds):
        self.batch_calls.append(list(seeds))
        return [self.fn(s) for s in seeds]


class TestBatchedRunTrials:
    def test_batched_matches_unbatched(self):
        for batch_size in (2, 3, 7, 50):
            fn = _BatchedFn(_ok)
            got = run_trials(fn, 7, seed=5, batch_size=batch_size)
            assert got == run_trials(_ok, 7, seed=5)
        assert [len(b) for b in fn.batch_calls] == [7]  # one 50-wide block

    def test_batch_size_one_runs_per_trial(self):
        fn = _BatchedFn(_ok)
        assert run_trials(fn, 4, seed=5, batch_size=1) == run_trials(
            _ok, 4, seed=5
        )
        assert fn.batch_calls == []  # protocol bypassed entirely

    def test_failing_batch_attributes_exact_trial(self):
        idx = _first_even_index(3, 8)
        seeds = child_seed_ints(3, 8)
        with pytest.raises(TrialExecutionError) as exc_info:
            run_trials(_BatchedFn(_raise_even), 8, seed=3, batch_size=4)
        assert exc_info.value.trial_index == idx
        assert exc_info.value.trial_seed == seeds[idx]

    def test_fn_without_run_batch_rejected(self):
        with pytest.raises(ValueError, match="run_batch"):
            run_trials(_ok, 4, seed=5, batch_size=2)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            run_trials(_BatchedFn(_ok), 4, seed=5, batch_size=0)
        with pytest.raises(ValueError, match="batch_size"):
            TrialExecutor(batch_size=0)

    @pytest.mark.slow
    def test_pooled_batched_matches_serial(self):
        got = run_trials(
            _module_batched_ok, 6, seed=11, n_workers=2, batch_size=2
        )
        assert got == run_trials(_ok, 6, seed=11)


def _module_ok_batch(seeds):
    return [_ok(s) for s in seeds]


class _ModuleBatched:
    """Picklable batched fn for pool tests (module-level, no closures)."""

    def __call__(self, seed):
        return _ok(seed)

    def run_batch(self, seeds):
        return _module_ok_batch(seeds)


_module_batched_ok = _ModuleBatched()


class TestBatchedResilient:
    def test_failure_free_batched_matches_unbatched(self):
        fn = _BatchedFn(_ok)
        batch = run_trials_resilient(fn, 7, seed=5, batch_size=3)
        assert batch.ok
        assert batch.results == run_trials(_ok, 7, seed=5)
        assert [len(b) for b in fn.batch_calls] == [3, 3, 1]

    def test_batched_failures_match_unbatched(self):
        kw = dict(seed=3, max_retries=2, backoff_base=0.0)
        plain = run_trials_resilient(_raise_even, 8, **kw)
        batched = run_trials_resilient(
            _BatchedFn(_raise_even), 8, batch_size=3, **kw
        )
        assert batched.results == plain.results
        assert batched.retries == plain.retries
        assert [f.trial_index for f in batched.failures] == [
            f.trial_index for f in plain.failures
        ]
        for fb, fp in zip(batched.failures, plain.failures):
            assert fb.attempt_seeds == fp.attempt_seeds

    def test_retried_trial_reenters_batch_with_retry_seed(self):
        # Regression: the first cut re-enqueued failed trials with the
        # wave's original seed vector, so retries re-ran the seed that had
        # just failed.  A retry must contribute its *retry* seed (attempt
        # column 1, 2, ...) to the wave it joins.
        table = _attempt_seed_table(3, 8, max_retries=2)
        fn = _BatchedFn(_raise_even)
        run_trials_resilient(
            fn, 8, seed=3, batch_size=3, max_retries=2, backoff_base=0.0
        )
        seen = [s for wave in fn.batch_calls for s in wave]
        retried = [i for i in range(8) if table[i][0] % 2 == 0]
        assert retried, "seed 3 must produce failing attempt-0 trials"
        for i in retried:
            assert table[i][1] in seen, (
                f"trial {i}: retry seed never entered a later wave"
            )
            assert seen.count(table[i][0]) == 1, (
                f"trial {i}: failed attempt-0 seed was re-batched"
            )

    @pytest.mark.slow
    def test_processes_bypass_batching(self):
        # Process-per-attempt isolation supersedes batching: the pool path
        # must accept batch_size and ignore it (no run_batch required).
        batch = run_trials_resilient(
            _ok, 4, seed=5, n_workers=2, batch_size=3
        )
        assert batch.ok
        assert batch.results == run_trials(_ok, 4, seed=5)


class TestTracerIntegration:
    def test_batch_counters(self):
        from repro.obs import Tracer

        tracer = Tracer()
        batch = run_trials_resilient(
            _raise_even, 8, seed=3, max_retries=1, backoff_base=0.0,
            tracer=tracer,
        )
        snap = tracer.snapshot(include_timings=False)
        assert snap["counters"]["trials"] == 8
        assert snap["counters"]["trials_failed"] == len(batch.failures)
        assert snap["counters"]["trial_retries"] == batch.retries


class TestBackoffJitter:
    """Seeded jitter on retry backoff: deterministic, bounded, and
    invisible to the trial seed streams."""

    def test_zero_jitter_is_pure_exponential(self):
        from repro.parallel.executor import _backoff

        for attempt in range(4):
            assert _backoff(0.5, 2.0, attempt) == 0.5 * 2.0**attempt
            assert (
                _backoff(0.5, 2.0, attempt, jitter=0.0, token=123)
                == 0.5 * 2.0**attempt
            )

    def test_jitter_bounds_and_determinism(self):
        from repro.parallel.executor import _backoff

        base, factor, jitter = 0.25, 2.0, 0.4
        for attempt, token in [(0, 7), (1, 7), (2, 99), (3, 2**63)]:
            raw = base * factor**attempt
            d1 = _backoff(base, factor, attempt, jitter=jitter, token=token)
            d2 = _backoff(base, factor, attempt, jitter=jitter, token=token)
            assert d1 == d2  # same token -> identical delay across runs
            assert raw <= d1 < raw * (1.0 + jitter)

    def test_tokens_desynchronize(self):
        from repro.parallel.executor import _backoff

        delays = {
            _backoff(1.0, 2.0, 0, jitter=0.5, token=t) for t in range(32)
        }
        assert len(delays) == 32  # distinct tokens -> distinct delays

    def test_no_token_means_no_jitter(self):
        from repro.parallel.executor import _backoff

        assert _backoff(1.0, 2.0, 1, jitter=0.5, token=None) == 2.0

    def test_zero_base_stays_zero(self):
        from repro.parallel.executor import _backoff

        assert _backoff(0.0, 2.0, 3, jitter=0.5, token=5) == 0.0

    def test_jitter_validation(self):
        with pytest.raises(ValueError, match="backoff_jitter"):
            run_trials_resilient(_ok, 1, backoff_jitter=-0.1)

    def test_jitter_does_not_touch_attempt_seeds(self):
        # The jitter stream is keyed off a dedicated namespace constant;
        # results, retries, and every attempt seed must match a
        # jitter-free run exactly.
        kw = dict(seed=3, max_retries=2, backoff_base=0.0)
        plain = run_trials_resilient(_raise_even, 8, backoff_jitter=0.0, **kw)
        jittered = run_trials_resilient(
            _raise_even, 8, backoff_jitter=0.9, **kw
        )
        assert jittered.results == plain.results
        assert jittered.retries == plain.retries
        for fj, fp in zip(jittered.failures, plain.failures):
            assert fj.attempt_seeds == fp.attempt_seeds

    def test_jittered_sleep_path_runs(self):
        # Exercise the sleeping branch with a micro base: outcome equals
        # the jitter-free run, just via the jittered delay computation.
        batch = run_trials_resilient(
            _raise_even, 4, seed=3, max_retries=1,
            backoff_base=1e-6, backoff_jitter=0.5,
        )
        ref = run_trials_resilient(
            _raise_even, 4, seed=3, max_retries=1, backoff_base=0.0
        )
        assert batch.results == ref.results
