"""Tests for the experiment harness (config, runner, report)."""

import numpy as np
import pytest

from repro.experiments import (
    ScenarioConfig,
    build_scenario,
    evaluate_methods,
    make_pre_knowledge,
    methods_table,
    run_sweep,
    standard_methods,
    sweep_table,
)
from repro.measurement.ranging import (
    ConnectivityOnly,
    GaussianRanging,
    ProportionalGaussianRanging,
    RSSIRanging,
    TOARanging,
)
from repro.network.deployment import (
    CShapeDeployment,
    GaussianClusterDeployment,
    GridDeployment,
    UniformDeployment,
)
from repro.network.radio import (
    LogNormalShadowingRadio,
    QuasiUnitDiskRadio,
    UnitDiskRadio,
)

FAST = standard_methods(grid_size=12, max_iterations=5, include=["bn-pk", "bn", "centroid"])
SMALL = ScenarioConfig(n_nodes=40, anchor_ratio=0.15, radio_range=0.25)


class TestScenarioConfig:
    def test_factories(self):
        assert isinstance(SMALL.make_deployment(), UniformDeployment)
        assert isinstance(SMALL.make_radio(), UnitDiskRadio)
        assert isinstance(SMALL.make_ranging(), GaussianRanging)
        cfg = SMALL.replace(deployment="grid", radio="qudg", ranging="proportional")
        assert isinstance(cfg.make_deployment(), GridDeployment)
        assert isinstance(cfg.make_radio(), QuasiUnitDiskRadio)
        assert isinstance(cfg.make_ranging(), ProportionalGaussianRanging)
        cfg = SMALL.replace(deployment="cshape", radio="lognormal", ranging="rssi")
        assert isinstance(cfg.make_deployment(), CShapeDeployment)
        assert isinstance(cfg.make_radio(), LogNormalShadowingRadio)
        assert isinstance(cfg.make_ranging(), RSSIRanging)
        cfg = SMALL.replace(deployment="clusters", ranging="toa")
        assert isinstance(cfg.make_deployment(), GaussianClusterDeployment)
        assert isinstance(cfg.make_ranging(), TOARanging)
        assert isinstance(SMALL.replace(ranging="none").make_ranging(), ConnectivityOnly)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(deployment="sphere")
        with pytest.raises(ValueError):
            ScenarioConfig(radio="laser")
        with pytest.raises(ValueError):
            ScenarioConfig(ranging="sonar")
        with pytest.raises(ValueError):
            ScenarioConfig(noise_ratio=-0.1)
        with pytest.raises(ValueError):
            ScenarioConfig(pk_error=0.0)

    def test_replace_immutable(self):
        cfg = SMALL.replace(noise_ratio=0.2)
        assert SMALL.noise_ratio == 0.1 and cfg.noise_ratio == 0.2


class TestBuildScenario:
    def test_reproducible(self):
        a_net, a_ms, a_prior = build_scenario(SMALL, seed=5)
        b_net, b_ms, b_prior = build_scenario(SMALL, seed=5)
        np.testing.assert_array_equal(a_net.positions, b_net.positions)
        np.testing.assert_array_equal(
            a_ms.observed_distances[a_ms.adjacency],
            b_ms.observed_distances[b_ms.adjacency],
        )

    def test_noise_change_keeps_topology(self):
        a_net, _, _ = build_scenario(SMALL, seed=5)
        b_net, _, _ = build_scenario(SMALL.replace(noise_ratio=0.3), seed=5)
        np.testing.assert_array_equal(a_net.positions, b_net.positions)
        np.testing.assert_array_equal(a_net.adjacency, b_net.adjacency)

    def test_pre_knowledge_presence(self):
        _, _, prior = build_scenario(SMALL, seed=1)
        assert prior is not None
        _, _, none_prior = build_scenario(SMALL.replace(pk_error=None), seed=1)
        assert none_prior is None

    def test_pre_knowledge_quality(self):
        net, _, _ = build_scenario(SMALL, seed=2)
        prior = make_pre_knowledge(SMALL.replace(pk_error=0.01), net, rng=3)
        # intended positions should be near the truth for small pk_error
        errs = [
            np.linalg.norm(prior._intended[i] - net.positions[i])
            for i in range(net.n_nodes)
        ]
        assert np.mean(errs) < 0.05


class TestEvaluateMethods:
    def test_runs_and_aggregates(self):
        res = evaluate_methods(SMALL, FAST, n_trials=2, seed=0)
        assert set(res) == set(FAST)
        for r in res.values():
            assert len(r.summaries) == 2
            assert np.isfinite(r.mean_error_norm)

    def test_pk_beats_no_pk(self):
        res = evaluate_methods(
            SMALL.replace(pk_error=0.05), FAST, n_trials=3, seed=1
        )
        assert res["bn-pk"].mean_error_norm < res["bn"].mean_error_norm

    def test_bn_beats_centroid(self):
        res = evaluate_methods(SMALL, FAST, n_trials=3, seed=2)
        assert res["bn"].mean_error_norm < res["centroid"].mean_error_norm

    def test_inapplicable_method_gets_zero_coverage(self):
        methods = standard_methods(include=["mle"])
        res = evaluate_methods(
            SMALL.replace(ranging="none"), methods, n_trials=1, seed=0
        )
        assert res["mle"].coverage == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            evaluate_methods(SMALL, FAST, n_trials=0)
        with pytest.raises(ValueError):
            standard_methods(include=["bn-pk", "oracle"])

    def test_reproducible(self):
        a = evaluate_methods(SMALL, FAST, n_trials=2, seed=9)
        b = evaluate_methods(SMALL, FAST, n_trials=2, seed=9)
        assert a["bn"].mean_error == b["bn"].mean_error


class TestRunSweep:
    def test_sweep_structure(self):
        sweep = run_sweep(
            SMALL, "anchor_ratio", [0.1, 0.2], FAST, n_trials=2, seed=0
        )
        assert sweep.x_name == "anchor_ratio"
        assert sweep.x_values == [0.1, 0.2]
        series = sweep.series()
        assert set(series) == set(FAST)
        assert len(series["bn"]) == 2

    def test_error_decreases_with_anchors(self):
        sweep = run_sweep(
            SMALL, "anchor_ratio", [0.08, 0.3], FAST, n_trials=3, seed=1
        )
        s = sweep.series("mean_error_norm")
        assert s["bn"][1] < s["bn"][0]

    def test_best_method(self):
        sweep = run_sweep(SMALL, "anchor_ratio", [0.15], FAST, n_trials=2, seed=2)
        assert sweep.best_method_at(0) in FAST


class TestReports:
    def test_sweep_table(self):
        sweep = run_sweep(SMALL, "anchor_ratio", [0.1, 0.2], FAST, n_trials=1, seed=0)
        out = sweep_table(sweep, title="T")
        assert "anchor_ratio" in out and "bn-pk" in out
        assert len(out.splitlines()) == 5

    def test_methods_table(self):
        res = evaluate_methods(SMALL, FAST, n_trials=1, seed=0)
        out = methods_table(res)
        assert "mean/r" in out and "centroid" in out


class TestParallelEvaluation:
    def test_worker_counts_agree(self):
        from repro.experiments import evaluate_methods_parallel

        kwargs = dict(
            method_names=["bn", "centroid"],
            n_trials=3,
            seed=4,
            grid_size=10,
            max_iterations=3,
        )
        serial = evaluate_methods_parallel(SMALL, n_workers=1, **kwargs)
        parallel = evaluate_methods_parallel(SMALL, n_workers=2, **kwargs)
        for name in kwargs["method_names"]:
            assert serial[name].mean_error == parallel[name].mean_error
            assert serial[name].summaries[0].mean == parallel[name].summaries[0].mean

    def test_validates_method_names_early(self):
        from repro.experiments import evaluate_methods_parallel

        with pytest.raises(ValueError):
            evaluate_methods_parallel(SMALL, ["oracle"], n_trials=1)

    def test_validates_counts(self):
        from repro.experiments import evaluate_methods_parallel

        with pytest.raises(ValueError):
            evaluate_methods_parallel(SMALL, ["bn"], n_trials=0)
        with pytest.raises(ValueError):
            evaluate_methods_parallel(SMALL, ["bn"], n_trials=1, n_workers=0)

    def test_reproducible(self):
        from repro.experiments import evaluate_methods_parallel

        a = evaluate_methods_parallel(
            SMALL, ["centroid"], n_trials=2, seed=5, n_workers=1
        )
        b = evaluate_methods_parallel(
            SMALL, ["centroid"], n_trials=2, seed=5, n_workers=1
        )
        assert a["centroid"].mean_error == b["centroid"].mean_error
