"""Likelihood tail contract, enforced across every RangingModel.

A sampling-based localizer (repro.core.mcmc) evaluates likelihoods at
arbitrary candidate positions — including absurd ones early in a chain —
so every model must satisfy one contract: for finite observations and
finite non-negative candidate distances, ``log_likelihood`` is finite or
``-inf``, never NaN and never ``+inf``.  Grid solvers only probe in-field
candidates and historically masked violations of this contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurement import (
    ChannelRSSIRanging,
    ConnectivityOnly,
    GaussianRanging,
    LatentNLOSRanging,
    NLOSRanging,
    ProportionalGaussianRanging,
    RobustRanging,
    RSSIRanging,
    TOARanging,
)
from repro.measurement.rssi import PathLossModel

MODELS = {
    "gaussian": lambda: GaussianRanging(sigma=0.05),
    "gaussian-tiny-sigma": lambda: GaussianRanging(sigma=1e-6),
    "proportional": lambda: ProportionalGaussianRanging(ratio=0.1),
    "toa": lambda: TOARanging(sigma_time=0.02, mean_delay=0.05),
    "rssi": lambda: RSSIRanging(PathLossModel(shadowing_db=4.0)),
    "connectivity": lambda: ConnectivityOnly(),
    "nlos": lambda: NLOSRanging(GaussianRanging(0.02), 0.3, 0.1),
    "robust": lambda: RobustRanging(GaussianRanging(0.02), 0.3, 0.1),
    "robust-wide": lambda: RobustRanging(
        ProportionalGaussianRanging(0.3), 0.5, 1e-3
    ),
    "channel-rssi": lambda: ChannelRSSIRanging(
        PathLossModel(shadowing_db=2.0)
    ),
    "channel-rssi-mis": lambda: ChannelRSSIRanging(
        PathLossModel(path_loss_exponent=4.0, shadowing_db=2.0),
        inversion_exponent=3.0,
    ),
    "latent-nlos": lambda: LatentNLOSRanging(
        ChannelRSSIRanging(
            PathLossModel(path_loss_exponent=2.0, shadowing_db=2.0),
            inversion_exponent=3.0,
        ),
        0.1,
        0.1,
    ),
}


def _assert_contract(ll: np.ndarray, ctx) -> None:
    ll = np.asarray(ll)
    assert not np.isnan(ll).any(), ctx
    assert not (ll == np.inf).any(), ctx


@pytest.mark.parametrize("name", sorted(MODELS))
@given(
    obs=st.floats(min_value=0.0, max_value=1e300, allow_nan=False),
    cand=st.floats(min_value=0.0, max_value=1e300, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_log_likelihood_finite_or_neginf(name, obs, cand):
    model = MODELS[name]()
    with np.errstate(all="ignore"):
        ll = model.log_likelihood(obs, np.array([cand]))
    _assert_contract(ll, (name, obs, cand))


@pytest.mark.parametrize("name", sorted(MODELS))
def test_log_likelihood_contract_on_extreme_grid(name):
    # Deterministic complement to the hypothesis lane: a full cross of
    # extreme magnitudes, including exact zeros and denormals.
    model = MODELS[name]()
    grid = np.concatenate(
        [[0.0, 5e-324, 1e-300], np.geomspace(1e-12, 1e300, 40)]
    )
    with np.errstate(all="ignore"):
        for obs in grid:
            _assert_contract(
                model.log_likelihood(float(obs), grid), (name, obs)
            )


@pytest.mark.parametrize("name", sorted(MODELS))
def test_log_likelihood_broadcasts_vector_obs(name):
    # The sampler evaluates stacked (observation, candidate) pairs in one
    # call; the contract must hold element-wise under broadcasting too.
    model = MODELS[name]()
    obs = np.array([0.0, 0.3, 1e150])
    cand = np.array([0.2, 0.4, 0.2])
    with np.errstate(all="ignore"):
        ll = model.log_likelihood(obs, cand)
    assert ll.shape == (3,)
    _assert_contract(ll, name)
