"""Unit tests for repro.core.grid and repro.core.potentials."""

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.potentials import (
    RangingPotentialCache,
    anchor_connectivity_potential,
    anchor_ranging_potential,
    connectivity_potential,
    negative_anchor_potential,
    pairwise_ranging_potential,
)
from repro.measurement.ranging import GaussianRanging
from repro.network.radio import UnitDiskRadio


class TestGrid2D:
    def test_centers_layout(self):
        g = Grid2D(2, 2)
        np.testing.assert_allclose(
            g.centers, [[0.25, 0.25], [0.75, 0.25], [0.25, 0.75], [0.75, 0.75]]
        )

    def test_rectangular_field(self):
        g = Grid2D(4, 2, width=2.0, height=1.0)
        assert g.n_cells == 8
        assert g.cell_width == pytest.approx(0.5)
        assert g.cell_height == pytest.approx(0.5)
        assert (g.centers[:, 0] <= 2.0).all()

    def test_pairwise_cached_and_symmetric(self):
        g = Grid2D(5)
        d = g.pairwise_center_distances()
        assert d is g.pairwise_center_distances()
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0)

    def test_distances_to_point(self):
        g = Grid2D(3)
        d = g.distances_to_point(np.array([0.5, 0.5]))
        assert d[4] == pytest.approx(0.0)  # center cell of 3x3

    def test_cell_of_round_trip(self):
        g = Grid2D(10)
        cells = g.cell_of(g.centers)
        np.testing.assert_array_equal(cells, np.arange(g.n_cells))

    def test_cell_of_clips(self):
        g = Grid2D(4)
        assert g.cell_of(np.array([[-1.0, -1.0]]))[0] == 0
        assert g.cell_of(np.array([[5.0, 5.0]]))[0] == g.n_cells - 1

    def test_expectation_delta(self):
        g = Grid2D(6)
        w = np.zeros(g.n_cells)
        w[7] = 1.0
        np.testing.assert_allclose(g.expectation(w), g.centers[7])

    def test_expectation_uniform_is_field_center(self):
        g = Grid2D(8)
        w = np.full(g.n_cells, 1.0)
        np.testing.assert_allclose(g.expectation(w), [0.5, 0.5])

    def test_covariance_positive_semidefinite(self):
        g = Grid2D(8)
        rng = np.random.default_rng(0)
        w = rng.uniform(size=g.n_cells)
        cov = g.covariance(w)
        eig = np.linalg.eigvalsh(cov)
        assert (eig >= -1e-12).all()

    def test_map_estimate(self):
        g = Grid2D(5)
        w = np.zeros(g.n_cells)
        w[13] = 2.0
        np.testing.assert_allclose(g.map_estimate(w), g.centers[13])

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid2D(1)
        with pytest.raises(ValueError):
            Grid2D(5).expectation(np.ones(7))
        with pytest.raises(ValueError):
            Grid2D(5).expectation(np.zeros(25))
        with pytest.raises(ValueError):
            Grid2D(5).distances_to_point(np.zeros(3))


class TestPotentials:
    GRID = Grid2D(12)
    RANGING = GaussianRanging(0.05)
    RADIO = UnitDiskRadio(0.25)

    def test_pairwise_peak_at_observed_distance(self):
        D = self.GRID.pairwise_center_distances()
        psi = pairwise_ranging_potential(D, 0.3, self.RANGING)
        # max entries should be where |D - 0.3| minimal
        best = np.unravel_index(np.argmax(psi), psi.shape)
        assert abs(D[best] - 0.3) < self.GRID.cell_diagonal

    def test_pairwise_radio_masks_out_of_range(self):
        D = self.GRID.pairwise_center_distances()
        psi = pairwise_ranging_potential(D, 0.2, self.RANGING, self.RADIO)
        assert (psi[D > 0.25] == 0).all()

    def test_pairwise_outlier_falls_back_to_link_evidence(self):
        # An observed distance inconsistent with the link constraint (a
        # gross NLOS outlier) must not zero the factor: the range is
        # discarded and the link-only potential kept.
        D = self.GRID.pairwise_center_distances()
        psi = pairwise_ranging_potential(
            D, 0.2, GaussianRanging(0.001), UnitDiskRadio(0.05)
        )
        np.testing.assert_array_equal(
            psi > 0, UnitDiskRadio(0.05).p_detect(D) > 0
        )

    def test_pairwise_without_radio_always_has_mass(self):
        # Without a link model the likelihood is max-shifted before
        # exponentiation, so even an absurd observed distance keeps its
        # best-fitting cells at weight 1 (relative likelihood).
        D = self.GRID.pairwise_center_distances()
        psi = pairwise_ranging_potential(D, 1e3, GaussianRanging(1e-3))
        assert psi.max() == pytest.approx(1.0)

    def test_connectivity_potential(self):
        D = self.GRID.pairwise_center_distances()
        psi = connectivity_potential(D, self.RADIO)
        assert (psi[D <= 0.25] == 1.0).all()
        assert (psi[D > 0.25] == 0.0).all()

    def test_anchor_ranging_annulus(self):
        pot = anchor_ranging_potential(
            self.GRID, np.array([0.5, 0.5]), 0.3, self.RANGING
        )
        d = self.GRID.distances_to_point(np.array([0.5, 0.5]))
        near_annulus = np.abs(d - 0.3) < 0.03
        far = np.abs(d - 0.3) > 0.2
        assert pot[near_annulus].min() > pot[far].max()

    def test_anchor_connectivity_disk(self):
        pot = anchor_connectivity_potential(
            self.GRID, np.array([0.5, 0.5]), self.RADIO
        )
        d = self.GRID.distances_to_point(np.array([0.5, 0.5]))
        assert (pot[d <= 0.25] == 1.0).all()
        assert (pot[d > 0.25] == 0.0).all()

    def test_negative_anchor_pushes_out(self):
        pot = negative_anchor_potential(self.GRID, np.array([0.5, 0.5]), self.RADIO)
        d = self.GRID.distances_to_point(np.array([0.5, 0.5]))
        assert (pot[d <= 0.25] == 0.0).all()
        assert (pot[d > 0.25] == 1.0).all()

    def test_negative_anchor_full_coverage_raises(self):
        with pytest.raises(ValueError):
            negative_anchor_potential(
                self.GRID, np.array([0.5, 0.5]), UnitDiskRadio(5.0)
            )


class TestRangingPotentialCache:
    GRID = Grid2D(10)
    RANGING = GaussianRanging(0.05)

    def test_sharing(self):
        cache = RangingPotentialCache(self.GRID, self.RANGING)
        a = cache.get(0.200)
        b = cache.get(0.2001)  # same quantum bucket
        assert a is b
        assert cache.n_cached == 1
        cache.get(0.35)
        assert cache.n_cached == 2

    def test_matches_dense_computation(self):
        cache = RangingPotentialCache(self.GRID, self.RANGING, truncate=0.0)
        q = cache.quantum
        d_obs = 7 * q  # exactly on a quantum point: no rounding error
        sparse_psi = cache.get(d_obs).toarray()
        dense = pairwise_ranging_potential(
            self.GRID.pairwise_center_distances(), d_obs, self.RANGING
        )
        np.testing.assert_allclose(sparse_psi, dense, atol=1e-12)

    def test_truncation_sparsifies(self):
        cache = RangingPotentialCache(self.GRID, self.RANGING, truncate=1e-3)
        psi = cache.get(0.3)
        assert psi.nnz < self.GRID.n_cells**2

    def test_invalid_distance(self):
        cache = RangingPotentialCache(self.GRID, self.RANGING)
        with pytest.raises(ValueError):
            cache.get(-0.1)
        with pytest.raises(ValueError):
            cache.get(float("nan"))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RangingPotentialCache(self.GRID, self.RANGING, truncate=1.0)
        with pytest.raises(ValueError):
            RangingPotentialCache(self.GRID, self.RANGING, quantum=0.0)
