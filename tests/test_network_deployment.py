"""Unit tests for repro.network.deployment."""

import numpy as np
import pytest

from repro.network.deployment import (
    CShapeDeployment,
    DeploymentModel,
    GaussianClusterDeployment,
    GridDeployment,
    UniformDeployment,
    deploy,
)


class TestUniformDeployment:
    def test_sample_shape_and_support(self):
        model = UniformDeployment(width=2.0, height=3.0)
        pts = model.sample(200, rng=0)
        assert pts.shape == (200, 2)
        assert (pts[:, 0] >= 0).all() and (pts[:, 0] <= 2.0).all()
        assert (pts[:, 1] >= 0).all() and (pts[:, 1] <= 3.0).all()

    def test_reproducible(self):
        model = UniformDeployment()
        np.testing.assert_array_equal(model.sample(10, 5), model.sample(10, 5))

    def test_log_density_flat_inside(self):
        model = UniformDeployment()
        ld = model.log_density(np.array([[0.5, 0.5], [2.0, 0.5]]))
        assert ld[0] == 0.0
        assert ld[1] == -np.inf

    def test_density_map_normalized(self):
        model = UniformDeployment()
        xs = np.linspace(0.05, 0.95, 10)
        dm = model.density_map(xs, xs)
        assert dm.shape == (10, 10)
        assert dm.sum() == pytest.approx(1.0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            UniformDeployment().sample(0)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            UniformDeployment(width=-1.0)


class TestGridDeployment:
    def test_zero_jitter_is_exact_grid(self):
        model = GridDeployment(jitter=0.0)
        pts = model.sample(9, rng=0)
        np.testing.assert_allclose(pts, model.grid_points(9))

    def test_jitter_spreads(self):
        model = GridDeployment(jitter=0.05)
        pts = model.sample(9, rng=0)
        assert not np.allclose(pts, model.grid_points(9))

    def test_grid_points_within_field(self):
        model = GridDeployment(width=2.0, height=1.0)
        g = model.grid_points(50)
        assert (g[:, 0] <= 2.0).all() and (g[:, 1] <= 1.0).all()

    def test_samples_clipped_to_field(self):
        model = GridDeployment(jitter=0.5)
        pts = model.sample(100, rng=1)
        assert (pts >= 0).all()
        assert (pts[:, 0] <= 1.0).all() and (pts[:, 1] <= 1.0).all()

    def test_log_density_peaks_at_grid(self):
        model = GridDeployment(jitter=0.03)
        grid = model.grid_points(100)
        on = model.log_density(grid[:1])
        off = model.log_density(grid[:1] + 0.04)
        assert on[0] > off[0]

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            GridDeployment(jitter=-0.1)


class TestGaussianClusterDeployment:
    CENTERS = np.array([[0.25, 0.25], [0.75, 0.75]])

    def test_samples_concentrate_near_centers(self):
        model = GaussianClusterDeployment(self.CENTERS, sigma=0.05)
        pts = model.sample(400, rng=0)
        d = np.minimum(
            np.linalg.norm(pts - self.CENTERS[0], axis=1),
            np.linalg.norm(pts - self.CENTERS[1], axis=1),
        )
        assert np.median(d) < 0.1

    def test_truncated_to_field(self):
        model = GaussianClusterDeployment(
            np.array([[0.02, 0.02]]), sigma=0.2
        )
        pts = model.sample(300, rng=0)
        assert (pts >= 0).all() and (pts <= 1).all()

    def test_log_density_ordering(self):
        model = GaussianClusterDeployment(self.CENTERS, sigma=0.05)
        ld = model.log_density(np.array([[0.25, 0.25], [0.5, 0.5]]))
        assert ld[0] > ld[1]

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            GaussianClusterDeployment(self.CENTERS, weights=np.array([1.0]))
        with pytest.raises(ValueError):
            GaussianClusterDeployment(self.CENTERS, weights=np.array([-1.0, 2.0]))

    def test_empty_centers_rejected(self):
        with pytest.raises(ValueError):
            GaussianClusterDeployment(np.zeros((0, 2)))


class TestCShapeDeployment:
    def test_no_samples_in_notch(self):
        model = CShapeDeployment()
        pts = model.sample(500, rng=0)
        assert model.contains(pts).all()
        # notch interior point must be excluded
        assert not model.contains(np.array([[0.9, 0.5]]))[0]

    def test_arm_points_inside(self):
        model = CShapeDeployment()
        assert model.contains(np.array([[0.9, 0.05], [0.9, 0.95], [0.1, 0.5]])).all()

    def test_log_density(self):
        model = CShapeDeployment()
        ld = model.log_density(np.array([[0.1, 0.5], [0.9, 0.5]]))
        assert ld[0] == 0.0 and ld[1] == -np.inf

    def test_invalid_notch(self):
        with pytest.raises(ValueError):
            CShapeDeployment(notch_width=1.5)


class TestDeployHelper:
    def test_deploy(self):
        pts = deploy(UniformDeployment(), 10, rng=0)
        assert pts.shape == (10, 2)

    def test_deploy_type_check(self):
        with pytest.raises(TypeError):
            deploy("uniform", 10)

    def test_abstract_base(self):
        with pytest.raises(TypeError):
            DeploymentModel()  # abstract
