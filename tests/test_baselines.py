"""Unit and integration tests for the baseline localizers."""

import numpy as np
import pytest

from repro.baselines import (
    CentroidLocalizer,
    DVHopLocalizer,
    MDSMAPLocalizer,
    MLELocalizer,
    MultilaterationLocalizer,
    WeightedCentroidLocalizer,
    lateration,
)
from repro.baselines.mds import classical_mds, procrustes_align
from repro.measurement import ConnectivityOnly, GaussianRanging, observe
from repro.network import NetworkConfig, UnitDiskRadio, WSNetwork, generate_network


@pytest.fixture(scope="module")
def net():
    return generate_network(
        NetworkConfig(
            n_nodes=80,
            anchor_ratio=0.15,
            radio=UnitDiskRadio(0.22),
            require_connected=True,
        ),
        rng=3,
    )


@pytest.fixture(scope="module")
def ranged(net):
    return observe(net, GaussianRanging(0.01), rng=4)


@pytest.fixture(scope="module")
def rangefree(net):
    return observe(net, ConnectivityOnly(), rng=4)


def mean_err(result, net):
    err = result.errors(net.positions)
    return float(np.nanmean(err[~net.anchor_mask]))


class TestLateration:
    def test_exact_recovery_zero_noise(self):
        truth = np.array([0.4, 0.6])
        refs = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        d = np.linalg.norm(refs - truth, axis=1)
        est = lateration(refs, d)
        np.testing.assert_allclose(est, truth, atol=1e-9)

    def test_weights_prefer_good_measurements(self):
        truth = np.array([0.5, 0.5])
        refs = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        d = np.linalg.norm(refs - truth, axis=1)
        d_bad = d.copy()
        d_bad[3] += 0.3  # one gross outlier
        w = np.array([1.0, 1.0, 1.0, 1e-6])
        est = lateration(refs, d_bad, w)
        est_unw = lateration(refs, d_bad)
        assert np.linalg.norm(est - truth) < np.linalg.norm(est_unw - truth)

    def test_collinear_rejected(self):
        refs = np.array([[0.0, 0.0], [0.5, 0.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            lateration(refs, np.array([0.5, 0.2, 0.5]))

    def test_input_validation(self):
        refs = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(ValueError):
            lateration(refs[:2], np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            lateration(refs, np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            lateration(refs, np.array([0.1, -0.2, 0.3]))
        with pytest.raises(ValueError):
            lateration(refs, np.array([0.1, 0.2, 0.3]), weights=np.array([1.0, 0.0, 1.0]))

    def test_no_refine_close_to_refined(self):
        truth = np.array([0.3, 0.7])
        refs = np.array([[0.0, 0.0], [1.0, 0.1], [0.2, 1.0], [0.9, 0.9]])
        d = np.linalg.norm(refs - truth, axis=1)
        a = lateration(refs, d, refine=False)
        b = lateration(refs, d, refine=True)
        assert np.linalg.norm(a - b) < 1e-6


class TestCentroid:
    def test_runs_and_covers(self, net, rangefree):
        res = CentroidLocalizer().localize(rangefree)
        assert res.method == "centroid"
        assert res.localized_mask[net.anchor_mask].all()
        assert mean_err(res, net) < 0.35

    def test_single_anchor_neighbor_estimates_anchor_position(self):
        # 3 anchors in a line + 1 unknown connected to one anchor only
        positions = np.array([[0.0, 0.0], [0.5, 0.5], [1.0, 1.0], [0.1, 0.0]])
        adj = np.zeros((4, 4), dtype=bool)
        adj[0, 3] = adj[3, 0] = True
        net = WSNetwork(positions, np.array([True, True, True, False]), adj, radio_range=0.2)
        ms = observe(net, ConnectivityOnly())
        res = CentroidLocalizer().localize(ms)
        np.testing.assert_allclose(res.estimates[3], positions[0])

    def test_unreachable_node_unlocalized(self):
        positions = np.array([[0.0, 0.0], [0.2, 0.0], [0.4, 0.0], [0.9, 0.9]])
        adj = np.zeros((4, 4), dtype=bool)
        adj[0, 1] = adj[1, 0] = adj[1, 2] = adj[2, 1] = True
        net = WSNetwork(positions, np.array([True, True, True, False]), adj, radio_range=0.25)
        res = CentroidLocalizer().localize(observe(net))
        assert not res.localized_mask[3]
        assert np.isnan(res.estimates[3]).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            CentroidLocalizer(max_hops=0)
        with pytest.raises(ValueError):
            WeightedCentroidLocalizer(epsilon=0)


class TestWeightedCentroid:
    def test_beats_or_matches_plain_centroid(self, net, ranged):
        plain = CentroidLocalizer().localize(ranged)
        weighted = WeightedCentroidLocalizer().localize(ranged)
        assert mean_err(weighted, net) <= mean_err(plain, net) + 0.02

    def test_rangefree_fallback(self, net, rangefree):
        res = WeightedCentroidLocalizer().localize(rangefree)
        assert mean_err(res, net) < 0.35


class TestDVHop:
    def test_accuracy_band(self, net, rangefree):
        res = DVHopLocalizer().localize(rangefree)
        # DV-Hop typically achieves ~0.3-0.5 r on uniform networks
        assert mean_err(res, net) < 0.5 * net.radio_range * 3

    def test_collinear_chain_hop_size_exact(self):
        # Anchors at both ends of a chain: hop size = spacing exactly.
        n = 6
        spacing = 0.1
        positions = np.column_stack([np.arange(n) * spacing, np.zeros(n)])
        adj = np.zeros((n, n), dtype=bool)
        for i in range(n - 1):
            adj[i, i + 1] = adj[i + 1, i] = True
        mask = np.zeros(n, dtype=bool)
        mask[[0, n - 1]] = True
        # add a third off-axis anchor so lateration is well-posed
        positions = np.vstack([positions, [0.25, 0.1]])
        adj = np.pad(adj, ((0, 1), (0, 1)))
        adj[2, n] = adj[n, 2] = True
        adj[3, n] = adj[n, 3] = True
        mask = np.append(mask, True)
        net = WSNetwork(positions, mask, adj, radio_range=0.15)
        res = DVHopLocalizer().localize(observe(net))
        err = res.errors(net.positions)
        assert np.nanmean(err[~mask]) < 0.1

    def test_needs_two_anchors(self):
        positions = np.array([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [0.3, 0.0]])
        adj = np.zeros((4, 4), dtype=bool)
        for i in range(3):
            adj[i, i + 1] = adj[i + 1, i] = True
        # WSNetwork requires >=1 anchors via config; build directly with 1
        net = WSNetwork(positions, np.array([True, False, False, False]), adj, radio_range=0.15)
        with pytest.raises(ValueError):
            DVHopLocalizer().localize(observe(net))

    def test_validation(self):
        with pytest.raises(ValueError):
            DVHopLocalizer(min_anchors=2)


class TestMDSMAP:
    def test_accuracy_with_ranging(self, net, ranged):
        res = MDSMAPLocalizer().localize(ranged)
        assert mean_err(res, net) < 0.5 * net.radio_range * 2

    def test_classical_mds_recovers_euclidean(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(size=(12, 2))
        from repro.utils.geometry import pairwise_distances

        D = pairwise_distances(pts)
        rel = classical_mds(D)
        R, s, t = procrustes_align(rel, pts)
        np.testing.assert_allclose(s * rel @ R + t, pts, atol=1e-8)

    def test_procrustes_recovers_similarity(self):
        rng = np.random.default_rng(1)
        src = rng.uniform(size=(8, 2))
        ang = 0.7
        R_true = np.array([[np.cos(ang), -np.sin(ang)], [np.sin(ang), np.cos(ang)]])
        tgt = 1.7 * src @ R_true + np.array([0.3, -0.2])
        R, s, t = procrustes_align(src, tgt)
        np.testing.assert_allclose(s, 1.7, atol=1e-9)
        np.testing.assert_allclose(s * src @ R + t, tgt, atol=1e-9)

    def test_mds_validation(self):
        with pytest.raises(ValueError):
            classical_mds(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            classical_mds(np.full((4, 4), np.inf))
        with pytest.raises(ValueError):
            procrustes_align(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_component_without_anchors_unlocalized(self):
        positions = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [0.05, 0.05],
             [0.9, 0.9], [0.95, 0.9]]
        )
        adj = np.zeros((6, 6), dtype=bool)
        for i, j in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (4, 5)]:
            adj[i, j] = adj[j, i] = True
        mask = np.array([True, True, True, False, False, False])
        net = WSNetwork(positions, mask, adj, radio_range=0.15)
        res = MDSMAPLocalizer().localize(observe(net, GaussianRanging(0.005), rng=0))
        assert res.localized_mask[3]
        assert not res.localized_mask[4] and not res.localized_mask[5]


class TestMultilateration:
    def test_low_noise_high_accuracy_where_covered(self, net, ranged):
        res = MultilaterationLocalizer().localize(ranged)
        err = res.errors(net.positions)
        unknown_localized = res.localized_mask & ~net.anchor_mask
        if unknown_localized.any():
            assert np.nanmean(err[unknown_localized]) < 0.1

    def test_rejects_rangefree(self, rangefree):
        with pytest.raises(ValueError):
            MultilaterationLocalizer().localize(rangefree)

    def test_promotion_extends_coverage(self, net, ranged):
        one_round = MultilaterationLocalizer(max_rounds=1).localize(ranged)
        many = MultilaterationLocalizer(max_rounds=10).localize(ranged)
        assert many.localized_mask.sum() >= one_round.localized_mask.sum()

    def test_validation(self):
        with pytest.raises(ValueError):
            MultilaterationLocalizer(min_references=2)
        with pytest.raises(ValueError):
            MultilaterationLocalizer(max_rounds=0)


class TestMLE:
    def test_beats_its_initializer(self, net, ranged):
        init = WeightedCentroidLocalizer()
        res = MLELocalizer(initializer=init).localize(ranged, rng=0)
        assert mean_err(res, net) < mean_err(init.localize(ranged), net)

    def test_prior_map_variant(self, net, ranged):
        from repro.priors import PerNodePrior

        prior = PerNodePrior(net.positions, sigma=0.05)
        res = MLELocalizer(prior=prior).localize(ranged, rng=0)
        base = MLELocalizer().localize(ranged, rng=0)
        assert mean_err(res, net) <= mean_err(base, net)

    def test_rejects_rangefree(self, rangefree):
        with pytest.raises(ValueError):
            MLELocalizer().localize(rangefree)

    def test_rejects_non_pernode_prior(self):
        from repro.priors import UniformPrior

        with pytest.raises(TypeError):
            MLELocalizer(prior=UniformPrior())

    def test_full_coverage(self, net, ranged):
        res = MLELocalizer().localize(ranged, rng=0)
        assert res.localized_mask.all()

    def test_reproducible(self, ranged):
        a = MLELocalizer().localize(ranged, rng=5)
        b = MLELocalizer().localize(ranged, rng=5)
        np.testing.assert_array_equal(a.estimates, b.estimates)
