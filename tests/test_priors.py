"""Unit and property tests for repro.priors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import Grid2D
from repro.network.deployment import CShapeDeployment, GaussianClusterDeployment
from repro.priors import (
    DeploymentPrior,
    GaussianPrior,
    MixturePrior,
    PerNodePrior,
    ProductPrior,
    RegionPrior,
    UniformPrior,
    combine,
)

GRID = Grid2D(15, 15)


class TestUniformPrior:
    def test_flat_weights(self):
        w = UniformPrior().grid_weights(0, GRID)
        np.testing.assert_allclose(w, 1.0 / GRID.n_cells)

    def test_sum_to_one(self):
        assert UniformPrior().grid_weights(3, GRID).sum() == pytest.approx(1.0)

    def test_outside_field(self):
        ld = UniformPrior().log_density(0, np.array([[2.0, 0.5]]))
        assert ld[0] == -np.inf


class TestGaussianPrior:
    def test_peak_at_mean(self):
        prior = GaussianPrior([0.5, 0.5], 0.1)
        w = prior.grid_weights(0, GRID)
        peak = GRID.centers[np.argmax(w)]
        np.testing.assert_allclose(peak, [0.5, 0.5], atol=GRID.cell_diagonal)

    def test_sigma_controls_spread(self):
        tight = GaussianPrior([0.5, 0.5], 0.05).grid_weights(0, GRID)
        wide = GaussianPrior([0.5, 0.5], 0.3).grid_weights(0, GRID)
        assert tight.max() > wide.max()

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianPrior([0.5], 0.1)
        with pytest.raises(ValueError):
            GaussianPrior([0.5, 0.5], 0.0)

    @given(st.floats(0.1, 0.9), st.floats(0.1, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_expectation_tracks_mean(self, mx, my):
        prior = GaussianPrior([mx, my], 0.05)
        w = prior.grid_weights(0, GRID)
        np.testing.assert_allclose(GRID.expectation(w), [mx, my], atol=0.05)


class TestMixturePrior:
    CENTERS = np.array([[0.2, 0.2], [0.8, 0.8]])

    def test_bimodal(self):
        prior = MixturePrior(self.CENTERS, 0.05)
        ld = prior.log_density(0, np.array([[0.2, 0.2], [0.8, 0.8], [0.5, 0.5]]))
        assert ld[0] > ld[2] and ld[1] > ld[2]

    def test_weights_shift_mass(self):
        prior = MixturePrior(self.CENTERS, 0.05, weights=[0.9, 0.1])
        ld = prior.log_density(0, self.CENTERS)
        assert ld[0] > ld[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            MixturePrior(np.zeros((0, 2)), 0.1)
        with pytest.raises(ValueError):
            MixturePrior(self.CENTERS, 0.1, weights=[1.0])


class TestDeploymentPrior:
    def test_matches_model_density(self):
        dep = GaussianClusterDeployment(np.array([[0.3, 0.3]]), sigma=0.1)
        prior = DeploymentPrior(dep)
        pts = np.array([[0.3, 0.3], [0.9, 0.9]])
        np.testing.assert_allclose(prior.log_density(5, pts), dep.log_density(pts))

    def test_type_check(self):
        with pytest.raises(TypeError):
            DeploymentPrior("uniform")


class TestPerNodePrior:
    INTENDED = np.array([[0.25, 0.25], [0.75, 0.75]])

    def test_node_specific(self):
        prior = PerNodePrior(self.INTENDED, sigma=0.05)
        w0 = prior.grid_weights(0, GRID)
        w1 = prior.grid_weights(1, GRID)
        np.testing.assert_allclose(
            GRID.centers[np.argmax(w0)], [0.25, 0.25], atol=GRID.cell_diagonal
        )
        np.testing.assert_allclose(
            GRID.centers[np.argmax(w1)], [0.75, 0.75], atol=GRID.cell_diagonal
        )

    def test_offset_shifts_prior(self):
        prior = PerNodePrior(self.INTENDED, sigma=0.05, offset=(0.2, 0.0))
        w0 = prior.grid_weights(0, GRID)
        np.testing.assert_allclose(
            GRID.centers[np.argmax(w0)], [0.45, 0.25], atol=GRID.cell_diagonal
        )

    def test_mapping_input(self):
        prior = PerNodePrior({7: (0.5, 0.5)}, sigma=0.1)
        w = prior.grid_weights(7, GRID)
        np.testing.assert_allclose(
            GRID.centers[np.argmax(w)], [0.5, 0.5], atol=GRID.cell_diagonal
        )

    def test_missing_node_flat(self):
        prior = PerNodePrior({0: (0.5, 0.5)}, sigma=0.1)
        w = prior.grid_weights(99, GRID)
        np.testing.assert_allclose(w, 1.0 / GRID.n_cells)

    def test_missing_node_fallback(self):
        prior = PerNodePrior(
            {0: (0.5, 0.5)}, sigma=0.1, fallback=GaussianPrior([0.1, 0.1], 0.05)
        )
        w = prior.grid_weights(99, GRID)
        np.testing.assert_allclose(
            GRID.centers[np.argmax(w)], [0.1, 0.1], atol=GRID.cell_diagonal
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PerNodePrior(np.zeros((3, 3)), sigma=0.1)
        with pytest.raises(ValueError):
            PerNodePrior(self.INTENDED, sigma=0.1, offset=(1.0,))


class TestRegionPrior:
    def test_cshape_support(self):
        shape = CShapeDeployment()
        prior = RegionPrior(shape.contains)
        ld = prior.log_density(0, np.array([[0.1, 0.5], [0.9, 0.5]]))
        assert ld[0] == 0.0 and ld[1] == -np.inf

    def test_grid_weights_area_fraction(self):
        # Cell weight is the area fraction inside the region: cells fully
        # in the notch get zero, boundary cells get partial weight, and
        # interior cells share the rest uniformly.
        shape = CShapeDeployment()
        prior = RegionPrior(shape.contains, subsamples=3)
        w = prior.grid_weights(0, GRID)
        assert w.sum() == pytest.approx(1.0)
        # a cell deep inside the notch: all subsamples outside the support
        deep_notch = GRID.cell_of(np.array([[0.85, 0.5]]))[0]
        assert w[deep_notch] == 0.0
        # a cell deep inside the C has full weight
        interior = GRID.cell_of(np.array([[0.1, 0.5]]))[0]
        assert w[interior] == w.max()
        # boundary cells (straddling the notch edge) may carry partial mass
        assert ((w > 0) & (w < w.max())).any()

    def test_region_prior_subsample_validation(self):
        with pytest.raises(ValueError):
            RegionPrior(lambda pts: pts[:, 0] < 0.5, subsamples=0)

    def test_type_check(self):
        with pytest.raises(TypeError):
            RegionPrior("not callable")


class TestComposition:
    def test_product_adds_log_densities(self):
        a = GaussianPrior([0.3, 0.3], 0.1)
        b = GaussianPrior([0.7, 0.7], 0.1)
        p = ProductPrior([a, b])
        pts = np.array([[0.5, 0.5]])
        np.testing.assert_allclose(
            p.log_density(0, pts), a.log_density(0, pts) + b.log_density(0, pts)
        )

    def test_product_peak_between(self):
        p = combine(GaussianPrior([0.3, 0.5], 0.1), GaussianPrior([0.7, 0.5], 0.1))
        w = p.grid_weights(0, GRID)
        np.testing.assert_allclose(
            GRID.centers[np.argmax(w)], [0.5, 0.5], atol=GRID.cell_diagonal
        )

    def test_combine_single_passthrough(self):
        a = UniformPrior()
        assert combine(a) is a

    def test_validation(self):
        with pytest.raises(ValueError):
            ProductPrior([])
        with pytest.raises(TypeError):
            ProductPrior([UniformPrior(), "x"])

    def test_empty_support_raises(self):
        p = combine(
            RegionPrior(lambda pts: pts[:, 0] < 0.1),
            RegionPrior(lambda pts: pts[:, 0] > 0.9),
        )
        with pytest.raises(ValueError):
            p.grid_weights(0, GRID)


class TestSampling:
    def test_samples_follow_prior(self):
        prior = GaussianPrior([0.3, 0.7], 0.05)
        pts = prior.sample(0, 800, GRID, rng=0)
        assert pts.shape == (800, 2)
        np.testing.assert_allclose(pts.mean(axis=0), [0.3, 0.7], atol=0.03)

    def test_reproducible(self):
        prior = UniformPrior()
        np.testing.assert_array_equal(
            prior.sample(0, 50, GRID, rng=4), prior.sample(0, 50, GRID, rng=4)
        )
