"""Streaming tracking runtime lane (``repro.stream``).

Fast in-process lane (default suite, ``-m stream``): hostile-stream
ingest hygiene, gap coasting, staleness shedding, the warm-start
divergence guard, per-network failure isolation, in-process
abort-and-resume bit-identity, the tracker warm-start step API, the
``TrackingResult`` wire codec, and ``GridBeliefPrior`` motion-diffusion
edge cases.

Slow crash-recovery lane (``-m "stream and slow"``): a real subprocess
SIGKILL'd mid-stream whose ledger resumes bit-identically, and a
SIGKILL'd pool worker that gets replaced without losing a network —
mirroring the ``ckpt``/``serve`` lanes.
"""

import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt import (
    Checkpoint,
    CheckpointAbort,
    CheckpointMismatch,
    ledger_progress,
)
from repro.core.bnloc import GridBPConfig, GridBPLocalizer
from repro.core.grid import Grid2D
from repro.io.serialize import (
    tracking_result_from_dict,
    tracking_result_to_dict,
)
from repro.measurement.measurements import observe
from repro.measurement.ranging import GaussianRanging
from repro.mobility.models import RandomWalkMobility
from repro.mobility.tracking import SequentialGridTracker, TrackingResult
from repro.network.generator import NetworkConfig, generate_network
from repro.network.radio import UnitDiskRadio
from repro.network.topology import WSNetwork
from repro.priors.belief import GridBeliefPrior, diffusion_kernel
from repro.stream import (
    FleetConfig,
    InlineExecutor,
    StreamConfig,
    StreamDisruption,
    StreamRuntime,
    StreamWorkerPool,
    fleet_events,
    run_stream,
)

pytestmark = pytest.mark.stream

_SRC = Path(__file__).resolve().parent.parent / "src"

# One small fleet shared by the fast-lane tests: cheap, connected, seeded.
FLEET = FleetConfig(
    n_networks=3,
    n_nodes=10,
    anchor_ratio=0.3,
    n_steps=3,
    radio_range=0.45,
    noise_sigma=0.02,
    seed=11,
)
STREAM = StreamConfig(
    grid_size=10,
    warm_iterations=3,
    cold_iterations=6,
    reorder_window=8,
    max_ready_burst=8,
)
TOTAL_CELLS = FLEET.n_networks * (FLEET.n_steps + 1)


def _assert_same_results(a, b):
    """Bit-identity across two StreamResults (estimates, masks, flags)."""
    assert sorted(a.networks) == sorted(b.networks)
    for nid in a.networks:
        ta, tb = a.networks[nid], b.networks[nid]
        np.testing.assert_array_equal(ta.estimates, tb.estimates)
        np.testing.assert_array_equal(ta.localized, tb.localized)
        np.testing.assert_array_equal(
            ta.extras["degraded"], tb.extras["degraded"]
        )
        assert ta.extras["reasons"] == tb.extras["reasons"]


# ---------------------------------------------------------------------- #
# the seeded adversary
# ---------------------------------------------------------------------- #
class TestStreamDisruption:
    def test_zero_rates_are_identity(self):
        events = fleet_events(FLEET)
        out, stats = StreamDisruption().apply(events)
        assert out == events
        assert stats.disrupted_fraction == 0.0

    def test_deterministic_replay(self):
        events = fleet_events(FLEET)
        plan = StreamDisruption(
            late_rate=0.3, duplicate_rate=0.2, drop_rate=0.1, seed=5
        )
        out1, stats1 = plan.apply(events)
        out2, stats2 = plan.apply(events)
        assert [(e.network_id, e.step) for e in out1] == [
            (e.network_id, e.step) for e in out2
        ]
        assert stats1.n_dropped == stats2.n_dropped
        assert stats1.n_delayed == stats2.n_delayed

    def test_stats_account_for_every_event(self):
        events = fleet_events(FLEET)
        plan = StreamDisruption(
            late_rate=0.4, duplicate_rate=0.3, drop_rate=0.2, seed=9
        )
        out, stats = plan.apply(events)
        assert stats.n_events == len(events)
        assert len(out) == len(events) - stats.n_dropped + stats.n_duplicated

    def test_dict_round_trip(self):
        plan = StreamDisruption(
            late_rate=0.1, duplicate_rate=0.2, drop_rate=0.05, max_lag=4, seed=3
        )
        assert StreamDisruption.from_dict(plan.to_dict()) == plan

    def test_validation(self):
        with pytest.raises(ValueError, match="late_rate"):
            StreamDisruption(late_rate=1.5)
        with pytest.raises(ValueError, match="max_lag"):
            StreamDisruption(max_lag=0)


# ---------------------------------------------------------------------- #
# watermarks + reorder buffers
# ---------------------------------------------------------------------- #
class TestHostileStream:
    def test_clean_feed_solves_every_epoch(self):
        result = run_stream(FLEET, STREAM)
        counters = result.metrics["counters"]
        assert counters["solved"] == TOTAL_CELLS
        assert result.lost_networks == []
        for tr in result.networks.values():
            assert not tr.extras["degraded"].any()
            assert np.isfinite(tr.estimates).all()

    def test_late_and_duplicate_events_do_not_change_results(self):
        # No drops: the reorder buffer absorbs lateness and the watermark
        # eats echoes, so the hostile run is bit-identical to the clean
        # one — robustness without a results tax.
        clean = run_stream(FLEET, STREAM)
        plan = StreamDisruption(
            late_rate=0.3, duplicate_rate=0.25, max_lag=4, seed=0
        )
        hostile = run_stream(FLEET, STREAM, disruption=plan)
        counters = hostile.metrics["counters"]
        assert counters["out_of_order"] > 0
        assert counters["duplicates"] > 0
        assert counters["solved"] == TOTAL_CELLS
        _assert_same_results(clean, hostile)

    def test_duplicate_behind_watermark_is_discarded(self):
        events = fleet_events(FLEET)
        runtime = StreamRuntime(STREAM, expected_networks=FLEET.n_networks)
        runtime.run(
            events + events[:3],  # replay the first fleet round verbatim
            final_step=FLEET.n_steps,
            network_ids=range(FLEET.n_networks),
            n_nodes=FLEET.n_nodes,
        )
        counters = runtime.metrics.snapshot()["counters"]
        assert counters["duplicates"] == 3
        assert counters["solved"] == TOTAL_CELLS


class TestGapCoasting:
    def test_dropped_epoch_is_coasted_and_flagged(self):
        events = [
            e for e in fleet_events(FLEET)
            if not (e.network_id == 0 and e.step == 1)
        ]
        runtime = StreamRuntime(STREAM, expected_networks=FLEET.n_networks)
        result = runtime.run(
            events,
            final_step=FLEET.n_steps,
            network_ids=range(FLEET.n_networks),
            n_nodes=FLEET.n_nodes,
        )
        assert result.lost_networks == []
        tr = result.networks[0]
        assert tr.extras["degraded"][1]
        assert tr.extras["reasons"][1] == "coasted"
        assert np.isfinite(tr.estimates[1]).all()  # prior expectation
        # the steps after the hole recovered and solved normally
        assert not tr.extras["degraded"][2:].any()
        # the other networks never noticed
        for nid in (1, 2):
            assert not result.networks[nid].extras["degraded"].any()

    def test_fully_dropped_network_coasts_to_final_step(self):
        events = [e for e in fleet_events(FLEET) if e.network_id != 2]
        runtime = StreamRuntime(STREAM, expected_networks=FLEET.n_networks)
        result = runtime.run(
            events,
            final_step=FLEET.n_steps,
            network_ids=range(FLEET.n_networks),
            n_nodes=FLEET.n_nodes,
        )
        assert result.lost_networks == []
        tr = result.networks[2]
        assert tr.extras["degraded"].all()
        assert tr.estimates.shape == (FLEET.n_steps + 1, FLEET.n_nodes, 2)
        assert np.isfinite(tr.estimates).all()


class TestStalenessShedding:
    def test_backlog_beyond_burst_budget_is_shed(self):
        events = [e for e in fleet_events(FLEET) if e.network_id == 0]
        config = StreamConfig(
            grid_size=10,
            warm_iterations=3,
            cold_iterations=6,
            max_ready_burst=1,
            batch_max=1,
        )
        runtime = StreamRuntime(config, expected_networks=1)
        runtime._default_n_nodes = FLEET.n_nodes  # run()'s plumbing
        # Ingest the whole backlog before any drain: ingest outran solve.
        for epoch in events:
            runtime.ingest(epoch)
        runtime._drain(force=True)
        counters = runtime.metrics.snapshot()["counters"]
        assert counters["shed"] == len(events) - 1
        assert counters["solved"] == 1
        state = runtime._states[0]
        for step in range(len(events) - 1):
            assert state.steps[step]["reason"] == "shed"


# ---------------------------------------------------------------------- #
# warm-start divergence guard
# ---------------------------------------------------------------------- #
class TestDivergenceGuard:
    def _runtime_and_epoch(self):
        runtime = StreamRuntime(STREAM, expected_networks=FLEET.n_networks)
        epoch = fleet_events(FLEET)[0]
        state = runtime._state(epoch.network_id)
        n = epoch.measurements.n_nodes
        k = runtime._grid.n_cells
        uniform = {i: np.full(k, 1.0 / k) for i in range(n)}
        state.prior = GridBeliefPrior(runtime._grid, uniform)
        state.last_estimates = np.asarray(epoch.true_positions).copy()
        state.last_solved_step = epoch.step - 1 if epoch.step else 0
        return runtime, state, epoch

    def _ok_payload(self, epoch):
        n = epoch.measurements.n_nodes
        return {
            "ok": True,
            "estimates": np.asarray(epoch.true_positions).copy(),
            "localized_mask": np.ones(n, dtype=bool),
            "fallback_mask": np.zeros(n, dtype=bool),
            "beliefs": {},
        }

    def test_plausible_warm_solve_passes(self):
        runtime, state, epoch = self._runtime_and_epoch()
        assert runtime._assess(state, epoch, self._ok_payload(epoch)) == "ok"

    def test_solver_error_is_failed(self):
        runtime, state, epoch = self._runtime_and_epoch()
        assert (
            runtime._assess(state, epoch, {"ok": False, "error": "boom"})
            == "failed"
        )

    def test_fallback_mask_trips_guard(self):
        runtime, state, epoch = self._runtime_and_epoch()
        payload = self._ok_payload(epoch)
        payload["fallback_mask"][0] = True
        assert runtime._assess(state, epoch, payload) == "guard"

    def test_broken_beliefs_trip_guard(self):
        runtime, state, epoch = self._runtime_and_epoch()
        payload = self._ok_payload(epoch)
        payload["beliefs"] = {0: np.full(runtime._grid.n_cells, np.nan)}
        assert runtime._assess(state, epoch, payload) == "guard"

    def test_implausible_jump_trips_guard(self):
        runtime, state, epoch = self._runtime_and_epoch()
        payload = self._ok_payload(epoch)
        payload["estimates"] = payload["estimates"] + 5.0  # teleport
        assert runtime._assess(state, epoch, payload) == "guard"

    def test_cold_solve_is_never_guarded(self):
        runtime, state, epoch = self._runtime_and_epoch()
        state.prior = None  # cold start: nothing to poison
        payload = self._ok_payload(epoch)
        payload["estimates"] = payload["estimates"] + 5.0
        assert runtime._assess(state, epoch, payload) == "ok"

    def test_poisoned_prior_falls_back_to_cold_resolve(self):
        # Seed network 0 with a confident wrong prior: the warm solve's
        # estimates jump implausibly far from the (fake) previous ones,
        # the guard trips, and the epoch lands cold-resolved + flagged.
        runtime = StreamRuntime(STREAM, expected_networks=FLEET.n_networks)
        events = [e for e in fleet_events(FLEET) if e.network_id == 0]
        state = runtime._state(0)
        k = runtime._grid.n_cells
        corner = np.zeros(k)
        corner[0] = 1.0
        n = events[0].measurements.n_nodes
        state.prior = GridBeliefPrior(
            runtime._grid, {i: corner for i in range(n)}
        )
        state.last_estimates = np.full((n, 2), 0.03)
        state.last_solved_step = -1
        result = runtime.run(
            events, final_step=FLEET.n_steps, network_ids=[0],
            n_nodes=FLEET.n_nodes,
        )
        counters = runtime.metrics.snapshot()["counters"]
        assert counters["guard_trips"] >= 1
        assert counters["cold_resolves"] >= 1
        tr = result.networks[0]
        assert tr.extras["degraded"][0]
        assert tr.extras["reasons"][0] == "warm-divergence"
        # the cold re-solve produced real estimates, not garbage
        assert np.isfinite(tr.estimates[0]).all()
        assert result.lost_networks == []


# ---------------------------------------------------------------------- #
# per-network failure isolation
# ---------------------------------------------------------------------- #
class _PoisonFirstItem:
    """Executor that corrupts the first item of the first batch only."""

    def __init__(self):
        self.inner = InlineExecutor()
        self.poisoned = False

    def solve(self, items):
        payloads = self.inner.solve(items)
        if not self.poisoned and payloads:
            payloads[0] = {"ok": False, "error": "injected"}
            self.poisoned = True
        return payloads

    def close(self):
        pass

    def snapshot(self):
        return self.inner.snapshot()


class TestFailureIsolation:
    def test_one_failing_epoch_never_stalls_the_fleet(self):
        events = fleet_events(FLEET)
        clean = StreamRuntime(STREAM, expected_networks=FLEET.n_networks).run(
            events, final_step=FLEET.n_steps,
            network_ids=range(FLEET.n_networks), n_nodes=FLEET.n_nodes,
        )
        runtime = StreamRuntime(
            STREAM, executor=_PoisonFirstItem(),
            expected_networks=FLEET.n_networks,
        )
        result = runtime.run(
            events, final_step=FLEET.n_steps,
            network_ids=range(FLEET.n_networks), n_nodes=FLEET.n_nodes,
        )
        counters = runtime.metrics.snapshot()["counters"]
        assert counters["failed"] == 1
        assert result.lost_networks == []
        # the poisoned epoch: health-fallback estimates, flagged
        poisoned = result.networks[0]
        assert poisoned.extras["degraded"][0]
        assert poisoned.extras["reasons"][0] == "injected"
        assert np.isfinite(poisoned.estimates[0]).all()
        # batch-mates were untouched: bit-identical to the clean run
        for nid in (1, 2):
            np.testing.assert_array_equal(
                result.networks[nid].estimates, clean.networks[nid].estimates
            )

    def test_faultplan_network_is_isolated(self):
        from repro.faults import FaultPlan

        fleet = FleetConfig(
            n_networks=3,
            n_nodes=10,
            anchor_ratio=0.3,
            n_steps=2,
            radio_range=0.45,
            noise_sigma=0.02,
            seed=11,
            fault_plan=FaultPlan(
                anchor_failure_rate=0.5,
                link_loss_rate=0.3,
                outlier_fraction=0.3,
                outlier_bias_ratio=1.5,
                seed=4,
            ),
            faulted_networks=(0,),
        )
        result = run_stream(fleet, STREAM)
        assert result.lost_networks == []
        # the healthy networks are untouched by network 0's faults
        for nid in (1, 2):
            assert np.isfinite(result.networks[nid].estimates).all()


# ---------------------------------------------------------------------- #
# checkpoint / resume
# ---------------------------------------------------------------------- #
class TestCheckpointResume:
    PLAN = StreamDisruption(late_rate=0.2, duplicate_rate=0.1, seed=7)

    def test_abort_and_resume_bit_identical(self, tmp_path):
        reference = run_stream(FLEET, STREAM, disruption=self.PLAN)
        ledger = tmp_path / "stream.jsonl"
        ck = Checkpoint(ledger, abort_after=5)
        with pytest.raises(CheckpointAbort):
            run_stream(FLEET, STREAM, disruption=self.PLAN, checkpoint=ck)
        ck.close()
        progress = ledger_progress(ledger)
        assert progress.meta["kind"] == "stream"
        assert progress.n_done == 5
        resumed = run_stream(
            FLEET, STREAM, disruption=self.PLAN, checkpoint=str(ledger)
        )
        _assert_same_results(resumed, reference)
        assert ledger_progress(ledger).complete

    def test_checkpointed_run_matches_uncheckpointed(self, tmp_path):
        plain = run_stream(FLEET, STREAM)
        ledgered = run_stream(
            FLEET, STREAM, checkpoint=str(tmp_path / "s.jsonl")
        )
        _assert_same_results(plain, ledgered)

    def test_complete_ledger_replays_everything(self, tmp_path):
        ledger = tmp_path / "s.jsonl"
        first = run_stream(FLEET, STREAM, checkpoint=str(ledger))
        replayed = run_stream(FLEET, STREAM, checkpoint=str(ledger))
        counters = replayed.metrics["counters"]
        assert counters["replayed"] == TOTAL_CELLS
        assert counters.get("solved", 0) == 0
        _assert_same_results(first, replayed)

    def test_mismatched_run_is_rejected(self, tmp_path):
        ledger = tmp_path / "s.jsonl"
        run_stream(FLEET, STREAM, checkpoint=str(ledger))
        other = FleetConfig(
            n_networks=3, n_nodes=10, anchor_ratio=0.3, n_steps=3,
            radio_range=0.45, noise_sigma=0.02, seed=99,
        )
        with pytest.raises(CheckpointMismatch):
            run_stream(other, STREAM, checkpoint=str(ledger))


# ---------------------------------------------------------------------- #
# tracker warm-start step API (satellite: no per-step rebuild)
# ---------------------------------------------------------------------- #
class TestTrackerStepAPI:
    def _scenario(self, seed=101):
        gen = np.random.default_rng(seed)
        radio = UnitDiskRadio(0.45)
        net = generate_network(
            NetworkConfig(n_nodes=12, anchor_ratio=0.3, radio=radio), rng=gen
        )
        traj = RandomWalkMobility(step_sigma=0.03).trajectory(
            net.positions, 3, rng=gen
        )
        return radio, net, traj

    def test_step_bit_identical_to_fresh_localizer_per_step(self):
        radio, net, traj = self._scenario()
        ranging = GaussianRanging(0.02)
        config = GridBPConfig(grid_size=10, max_iterations=5)
        motion_sigma = 0.04

        tracker = SequentialGridTracker(
            radio, ranging, motion_sigma=motion_sigma, config=config
        )
        shared = tracker.track(traj, net.anchor_mask, rng=7)

        # The pre-refactor path: a brand-new localizer, grid, and
        # diffusion kernel per step, identical rng stream.
        gen = np.random.default_rng(7)
        prior = None
        fresh = np.full_like(shared.estimates, np.nan)
        for t in range(traj.shape[0]):
            snap = WSNetwork(
                positions=traj[t],
                anchor_mask=net.anchor_mask,
                adjacency=radio.adjacency(traj[t], gen),
                width=1.0,
                height=1.0,
                radio_range=radio.range_,
            )
            ms = observe(snap, ranging, gen)
            loc = GridBPLocalizer(radio=radio, prior=prior, config=config)
            res = loc.localize(ms, gen)
            grid = Grid2D(config.grid_size, config.grid_size, 1.0, 1.0)
            prior = GridBeliefPrior(
                grid, res.extras["beliefs"], diffusion_sigma=motion_sigma
            )
            fresh[t] = res.estimates
        np.testing.assert_array_equal(shared.estimates, fresh)

    def test_step_returns_result_and_diffused_prior(self):
        radio, net, traj = self._scenario()
        tracker = SequentialGridTracker(
            radio, GaussianRanging(0.02), motion_sigma=0.04,
            config=GridBPConfig(grid_size=10, max_iterations=5),
        )
        gen = np.random.default_rng(3)
        snap = WSNetwork(
            positions=traj[0],
            anchor_mask=net.anchor_mask,
            adjacency=radio.adjacency(traj[0], gen),
            width=1.0,
            height=1.0,
            radio_range=radio.range_,
        )
        ms = observe(snap, GaussianRanging(0.02), gen)
        result, nxt = tracker.step(ms, None, gen)
        assert result.estimates.shape == (12, 2)
        assert isinstance(nxt, GridBeliefPrior)
        assert nxt.diffusion_sigma == 0.04
        # the cold-start prior was cleared, not left dangling
        assert tracker._localizer.prior is None

    def test_grid_is_cached_until_geometry_changes(self):
        tracker = SequentialGridTracker(
            UnitDiskRadio(0.4), GaussianRanging(0.02),
            config=GridBPConfig(grid_size=8),
        )
        g1 = tracker.grid_for(1.0, 1.0)
        assert tracker.grid_for(1.0, 1.0) is g1
        g2 = tracker.grid_for(2.0, 1.0)
        assert g2 is not g1
        assert g2.width == 2.0


# ---------------------------------------------------------------------- #
# TrackingResult wire codec (satellite)
# ---------------------------------------------------------------------- #
class TestTrackingResultCodec:
    def _result(self):
        estimates = np.full((3, 4, 2), np.nan)
        estimates[0] = np.arange(8).reshape(4, 2) / 7.0
        localized = np.zeros((3, 4), dtype=bool)
        localized[0] = True
        degraded = np.array([False, True, True])
        return TrackingResult(
            estimates,
            localized,
            "stream-grid-bp",
            extras={"degraded": degraded, "reasons": [None, "coasted", "shed"]},
        )

    def test_round_trip_is_bit_exact(self):
        original = self._result()
        back = tracking_result_from_dict(tracking_result_to_dict(original))
        assert isinstance(back, TrackingResult)
        np.testing.assert_array_equal(back.estimates, original.estimates)
        assert back.estimates.dtype == original.estimates.dtype
        np.testing.assert_array_equal(back.localized, original.localized)
        assert back.localized.dtype == np.bool_
        assert back.method == original.method
        np.testing.assert_array_equal(
            back.extras["degraded"], original.extras["degraded"]
        )
        assert back.extras["reasons"] == original.extras["reasons"]

    def test_round_trip_survives_json(self):
        import json

        original = self._result()
        wire = json.loads(json.dumps(tracking_result_to_dict(original)))
        back = tracking_result_from_dict(wire)
        np.testing.assert_array_equal(back.estimates, original.estimates)
        np.testing.assert_array_equal(back.localized, original.localized)

    def test_tag_is_validated(self):
        payload = tracking_result_to_dict(self._result())
        payload["kind"] = "something-else"
        with pytest.raises(ValueError, match="tracking-result"):
            tracking_result_from_dict(payload)

    def test_empty_extras(self):
        tr = TrackingResult(
            np.zeros((1, 2, 2)), np.ones((1, 2), dtype=bool), "mcl"
        )
        back = tracking_result_from_dict(tracking_result_to_dict(tr))
        assert back.extras == {}


# ---------------------------------------------------------------------- #
# GridBeliefPrior motion-diffusion edge cases (satellite)
# ---------------------------------------------------------------------- #
class TestBeliefDiffusionEdges:
    GRID = Grid2D(8, 8, 1.0, 1.0)

    def test_zero_sigma_is_identity(self):
        w = np.zeros(self.GRID.n_cells)
        w[13] = 0.75
        w[50] = 0.25
        prior = GridBeliefPrior(self.GRID, {0: w}, diffusion_sigma=0.0, floor=0.0)
        np.testing.assert_array_equal(prior.weights[0], w)

    def test_boundary_mass_is_conserved(self):
        # All mass in a corner cell: the truncated, column-normalized
        # kernel piles mass against the field edge instead of leaking it.
        w = np.zeros(self.GRID.n_cells)
        w[0] = 1.0
        prior = GridBeliefPrior(
            self.GRID, {0: w}, diffusion_sigma=0.15, floor=0.0
        )
        out = prior.weights[0]
        assert np.isclose(out.sum(), 1.0)
        assert (out >= 0).all()
        assert out[0] > 0  # the source cell keeps mass

    def test_uniform_prior_stays_near_uniform(self):
        k = self.GRID.n_cells
        w = np.full(k, 1.0 / k)
        prior = GridBeliefPrior(
            self.GRID, {0: w}, diffusion_sigma=0.08, floor=0.0
        )
        out = prior.weights[0]
        assert np.isclose(out.sum(), 1.0)
        assert out.min() > 0
        # diffusion redistributes but cannot manufacture structure:
        # every cell stays within a factor of 2 of uniform
        assert np.abs(out - 1.0 / k).max() < 1.0 / k

    def test_kernel_cache_is_bit_identical_to_fresh(self):
        from repro.priors import belief

        grid = Grid2D(6, 6, 1.0, 1.0)
        cached = diffusion_kernel(grid, 0.1)
        assert diffusion_kernel(grid, 0.1) is cached  # LRU hit
        belief._KERNEL_CACHE.clear()
        rebuilt = diffusion_kernel(grid, 0.1)
        np.testing.assert_array_equal(rebuilt, cached)

    def test_kernel_requires_positive_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            diffusion_kernel(self.GRID, 0.0)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        sigma=st.floats(0.01, 0.4),
    )
    def test_diffusion_never_produces_nan_or_negative_mass(self, seed, sigma):
        gen = np.random.default_rng(seed)
        w = gen.random(self.GRID.n_cells) ** 3  # spiky but non-negative
        w[gen.integers(0, self.GRID.n_cells)] += 1.0  # never all-zero
        prior = GridBeliefPrior(
            self.GRID, {0: w}, diffusion_sigma=sigma, floor=0.0
        )
        out = prior.weights[0]
        assert np.isfinite(out).all()
        assert (out >= 0).all()
        assert np.isclose(out.sum(), 1.0)


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestStreamCLI:
    def test_stream_and_resume_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        ledger = tmp_path / "cli.jsonl"
        rc = main(
            [
                "stream",
                "--networks", "2",
                "--nodes", "10",
                "--steps", "2",
                "--grid", "10",
                "--late", "0.2",
                "--seed", "11",
                "--checkpoint", str(ledger),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "lost networks: 0" in out
        rc = main(["resume", str(ledger)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resumed stream" in out
        assert "lost networks: 0" in out


# ---------------------------------------------------------------------- #
# worker pool (slow: spawns real processes)
# ---------------------------------------------------------------------- #
@pytest.mark.slow
class TestStreamWorkerPool:
    def test_pool_matches_inline_and_survives_sigkill(self):
        events = fleet_events(FLEET)
        inline = StreamRuntime(
            STREAM, expected_networks=FLEET.n_networks
        ).run(
            events, final_step=FLEET.n_steps,
            network_ids=range(FLEET.n_networks), n_nodes=FLEET.n_nodes,
        )
        pool = StreamWorkerPool(2, timeout_s=60.0)
        try:
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            time.sleep(0.2)
            runtime = StreamRuntime(
                STREAM, executor=pool, expected_networks=FLEET.n_networks
            )
            pooled = runtime.run(
                events, final_step=FLEET.n_steps,
                network_ids=range(FLEET.n_networks), n_nodes=FLEET.n_nodes,
            )
        finally:
            pool.close()
        assert pool.replacements >= 1
        assert pooled.lost_networks == []
        # n_workers (and worker death) is a pure throughput knob
        _assert_same_results(pooled, inline)


# ---------------------------------------------------------------------- #
# crash recovery: real subprocess, real SIGKILL
# ---------------------------------------------------------------------- #
_CRASH_SCRIPT = """\
import sys

from repro.stream import FleetConfig, StreamConfig, StreamDisruption, run_stream


def main():
    fleet = FleetConfig(
        n_networks=3, n_nodes=10, anchor_ratio=0.3, n_steps=3,
        radio_range=0.45, noise_sigma=0.02, seed=11,
    )
    stream = StreamConfig(
        grid_size=10, warm_iterations=3, cold_iterations=6,
        reorder_window=8, max_ready_burst=8,
    )
    plan = StreamDisruption(late_rate=0.2, duplicate_rate=0.1, seed=7)
    run_stream(fleet, stream, disruption=plan, checkpoint=sys.argv[1])


if __name__ == "__main__":
    main()
"""


@pytest.mark.slow
class TestCrashRecovery:
    """SIGKILL a checkpointed stream subprocess mid-run, resume its
    ledger in-process, and demand bit-identity with an uninterrupted
    run — the tentpole's resumability contract."""

    PLAN = StreamDisruption(late_rate=0.2, duplicate_rate=0.1, seed=7)

    def _spawn(self, tmp_path):
        # spawned multiprocessing workers cannot re-import <stdin>, and
        # the killed process must be a real interpreter: a script file
        script = tmp_path / "stream_forever.py"
        script.write_text(_CRASH_SCRIPT)
        ledger = tmp_path / "stream.jsonl"
        env = dict(os.environ, PYTHONPATH=str(_SRC))
        proc = subprocess.Popen(
            [sys.executable, str(script), str(ledger)],
            env=env,
            cwd=tmp_path,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        return proc, ledger

    def _wait_for_records(self, proc, ledger, n_lines, timeout=90.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if ledger.exists() and ledger.read_text().count("\n") >= n_lines:
                return True
            if proc.poll() is not None:
                return False
            time.sleep(0.005)
        pytest.fail("subprocess produced no durable records in time")

    def test_sigkill_mid_stream_then_resume_bit_identical(self, tmp_path):
        proc, ledger = self._spawn(tmp_path)
        mid_run = self._wait_for_records(proc, ledger, 3)
        killed = proc.poll() is None
        if killed:
            os.kill(proc.pid, signal.SIGKILL)
        _, stderr = proc.communicate(timeout=30)
        if not mid_run and proc.returncode != 0:
            pytest.fail(f"subprocess died on its own: {stderr.decode()!r}")
        if killed:
            assert proc.returncode == -signal.SIGKILL
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # torn tail ok
            progress = ledger_progress(ledger)
        assert progress.meta["kind"] == "stream"
        assert progress.n_done >= 1
        resumed = run_stream(
            FLEET, STREAM, disruption=self.PLAN, checkpoint=str(ledger)
        )
        reference = run_stream(FLEET, STREAM, disruption=self.PLAN)
        _assert_same_results(resumed, reference)
        assert resumed.lost_networks == []
        # the ledger is now complete: a second resume re-runs nothing
        assert ledger_progress(ledger).complete
