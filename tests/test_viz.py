"""Tests for the plain-text visualization helpers."""

import numpy as np
import pytest

from repro.core import Grid2D, GridBPConfig, GridBPLocalizer
from repro.measurement import GaussianRanging, observe
from repro.network import NetworkConfig, UnitDiskRadio, generate_network
from repro.viz import render_belief, render_error_bars, render_network


@pytest.fixture(scope="module")
def scenario():
    net = generate_network(
        NetworkConfig(n_nodes=30, anchor_ratio=0.2, radio=UnitDiskRadio(0.3)),
        rng=1,
    )
    ms = observe(net, GaussianRanging(0.02), rng=2)
    res = GridBPLocalizer(
        config=GridBPConfig(grid_size=10, max_iterations=4)
    ).localize(ms)
    return net, res


class TestRenderNetwork:
    def test_contains_all_markers(self, scenario):
        net, res = scenario
        out = render_network(net, res)
        assert "A" in out
        assert any(c in out for c in ("o", "x", "8"))
        assert "legend" not in out  # legend text, not the word
        assert "anchor" in out

    def test_dimensions(self, scenario):
        net, _ = scenario
        out = render_network(net, cols=30, rows=10)
        lines = out.splitlines()
        assert lines[0] == "+" + "-" * 30 + "+"
        assert len(lines) == 10 + 3  # borders + legend

    def test_without_result(self, scenario):
        net, _ = scenario
        out = render_network(net)
        assert "x" not in out.splitlines()[1]  # no estimates plotted

    def test_unlocalized_marker(self, scenario):
        net, res = scenario
        res2 = type(res)(
            estimates=np.where(
                res.localized_mask[:, None] & ~net.anchor_mask[:, None],
                np.nan,
                res.estimates,
            ),
            localized_mask=net.anchor_mask.copy(),
            method="m",
        )
        out = render_network(net, res2)
        assert "?" in out

    def test_canvas_validation(self, scenario):
        net, _ = scenario
        with pytest.raises(ValueError):
            render_network(net, cols=5, rows=2)


class TestRenderBelief:
    GRID = Grid2D(8)

    def test_shape(self):
        b = np.random.default_rng(0).uniform(size=self.GRID.n_cells)
        out = render_belief(self.GRID, b)
        lines = out.splitlines()
        assert len(lines) == self.GRID.ny + 2
        assert all(len(line) == self.GRID.nx + 2 for line in lines)

    def test_peak_is_darkest(self):
        b = np.full(self.GRID.n_cells, 0.001)
        b[27] = 1.0
        out = render_belief(self.GRID, b)
        assert "@" in out

    def test_true_position_marker(self):
        b = np.ones(self.GRID.n_cells)
        out = render_belief(self.GRID, b, true_position=np.array([0.5, 0.5]))
        assert "T" in out

    def test_orientation_top_is_high_y(self):
        # mass concentrated at high y must appear in the first body row
        b = np.zeros(self.GRID.n_cells)
        b[self.GRID.cell_of(np.array([[0.5, 0.95]]))[0]] = 1.0
        lines = render_belief(self.GRID, b).splitlines()
        assert "@" in lines[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            render_belief(self.GRID, np.ones(5))
        with pytest.raises(ValueError):
            render_belief(self.GRID, np.zeros(self.GRID.n_cells))


class TestRenderErrorBars:
    def test_basic(self):
        out = render_error_bars(["bn-pk", "dv-hop"], [0.05, 0.2], unit=" r")
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")
        assert "0.05 r" in lines[0]

    def test_empty(self):
        assert render_error_bars([], []) == ""

    def test_validation(self):
        with pytest.raises(ValueError):
            render_error_bars(["a"], [0.1, 0.2])
        with pytest.raises(ValueError):
            render_error_bars(["a"], [-1.0])
        with pytest.raises(ValueError):
            render_error_bars(["a"], [float("nan")])
