"""Unit and property tests for repro.utils.geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.geometry import (
    bounding_box,
    clip_to_box,
    distance,
    distances_to,
    pairwise_distances,
    points_in_box,
    polygon_contains,
)

finite_coords = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)
point_sets = arrays(
    np.float64,
    st.tuples(st.integers(1, 12), st.just(2)),
    elements=finite_coords,
)


class TestPairwiseDistances:
    def test_known_values(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 1.0]])
        d = pairwise_distances(pts)
        assert d[0, 1] == pytest.approx(5.0)
        assert d[0, 2] == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((3, 3)))

    @given(point_sets)
    @settings(max_examples=30, deadline=None)
    def test_symmetry_and_zero_diagonal(self, pts):
        d = pairwise_distances(pts)
        np.testing.assert_allclose(d, d.T, atol=1e-9)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-9)

    @given(point_sets)
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality(self, pts):
        d = pairwise_distances(pts)
        n = len(pts)
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-7

    @given(point_sets, finite_coords, finite_coords)
    @settings(max_examples=30, deadline=None)
    def test_translation_invariance(self, pts, dx, dy):
        shifted = pts + np.array([dx, dy])
        np.testing.assert_allclose(
            pairwise_distances(pts), pairwise_distances(shifted), atol=1e-6
        )


class TestDistancesTo:
    def test_matches_pairwise(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(size=(10, 2))
        target = pts[3]
        d = distances_to(pts, target)
        full = pairwise_distances(pts)
        np.testing.assert_allclose(d, full[3], atol=1e-12)

    def test_target_shape_validation(self):
        with pytest.raises(ValueError):
            distances_to(np.zeros((3, 2)), np.zeros(3))


class TestDistance:
    def test_pythagorean(self):
        assert distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            distance([0, 0, 0], [1, 1, 1])


class TestBoxes:
    def test_clip(self):
        pts = np.array([[-1.0, 0.5], [2.0, 3.0], [0.5, 0.5]])
        out = clip_to_box(pts, 1.0, 1.0)
        assert points_in_box(out, 1.0, 1.0).all()
        np.testing.assert_array_equal(out[2], [0.5, 0.5])

    def test_clip_does_not_mutate(self):
        pts = np.array([[-1.0, 0.5]])
        clip_to_box(pts, 1.0, 1.0)
        assert pts[0, 0] == -1.0

    def test_points_in_box_boundary_inclusive(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [1.0001, 0.5]])
        mask = points_in_box(pts, 1.0, 1.0)
        assert mask.tolist() == [True, True, False]

    def test_bounding_box(self):
        pts = np.array([[0.1, 0.9], [0.5, 0.2], [0.3, 0.4]])
        assert bounding_box(pts) == pytest.approx((0.1, 0.2, 0.5, 0.9))

    def test_bounding_box_empty(self):
        with pytest.raises(ValueError):
            bounding_box(np.zeros((0, 2)))


class TestPolygonContains:
    SQUARE = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)

    def test_square_interior_exterior(self):
        pts = np.array([[0.5, 0.5], [1.5, 0.5], [-0.1, 0.5]])
        mask = polygon_contains(self.SQUARE, pts)
        assert mask.tolist() == [True, False, False]

    def test_l_shape(self):
        lshape = np.array(
            [[0, 0], [2, 0], [2, 1], [1, 1], [1, 2], [0, 2]], dtype=float
        )
        pts = np.array([[0.5, 1.5], [1.5, 1.5], [1.5, 0.5]])
        mask = polygon_contains(lshape, pts)
        assert mask.tolist() == [True, False, True]

    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            polygon_contains(np.array([[0, 0], [1, 1]], dtype=float), np.zeros((1, 2)))

    @given(
        st.lists(
            st.tuples(
                st.floats(0.05, 0.95, allow_nan=False),
                st.floats(0.05, 0.95, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_unit_square_agrees_with_box(self, coords):
        pts = np.array(coords)
        mask = polygon_contains(self.SQUARE, pts)
        assert mask.all()
