"""Tests for repro.audit: invariant checkers, the differential harness,
the corpus manifest, and regression pins for the bugs the harness found.

Every equivalence tier gets (a) a passing case from the standing matrix
and (b) a deliberately broken fixture proving the harness detects the
breakage — a differential harness that cannot fail is not a harness.
"""

import json
import os

import numpy as np
import pytest

from repro.audit import (
    AuditError,
    Auditor,
    AuditViolation,
    DiffCase,
    ScenarioContext,
    audit_localization_result,
    check_belief_matrix,
    check_message_floor,
    check_result_geometry,
    check_round_accounting,
    check_symmetric_ops,
    load_manifest,
    make_corpus,
    manifest_dict,
    resolve_audit_mode,
    run_case,
    run_corpus,
    summarize,
)
from repro.audit.harness import _run_distributed, _run_grid, _run_nbp
from repro.core.result import LocalizationResult

pytestmark = pytest.mark.audit

DATA = os.path.join(os.path.dirname(__file__), "data")


def _spec(scenario_id):
    specs = {s.scenario_id: s for s in make_corpus("smoke")}
    return specs[scenario_id]


@pytest.fixture(scope="module")
def ranging_ctx():
    return ScenarioContext(_spec("smoke-ranging-pk"))


# --------------------------------------------------------------------- #
# invariant checkers
# --------------------------------------------------------------------- #
class TestCheckers:
    def test_healthy_beliefs_pass(self):
        b = np.full((3, 4), 0.25)
        assert check_belief_matrix(b) == []

    def test_nan_negative_unnormalized_caught(self):
        b = np.full((3, 4), 0.25)
        b[0, 0] = np.nan
        b[1, 1] = -0.1
        b[2] = 0.3
        names = {v.name for v in check_belief_matrix(b)}
        assert names == {"belief-finite", "belief-nonnegative", "belief-normalized"}

    def test_message_floor(self):
        ok = [np.array([0.5, 0.5]), np.array([1e-12, 1.0])]
        assert check_message_floor(ok, 1e-12) == []
        bad = [np.array([1e-13, 1.0])]
        assert [v.name for v in check_message_floor(bad, 1e-12)] == ["message-floor"]
        nan = [np.array([np.nan, 1.0])]
        assert [v.name for v in check_message_floor(nan, 1e-12)] == ["message-finite"]

    def test_symmetric_ops(self):
        sym = np.array([[1.0, 2.0], [2.0, 1.0]])
        assert check_symmetric_ops([(sym, sym)]) == []
        fwd = np.array([[1.0, 2.0], [3.0, 1.0]])
        assert check_symmetric_ops([(fwd, fwd.T)]) == []
        bad = check_symmetric_ops([(fwd, fwd)])
        assert [v.name for v in bad] == ["potential-symmetric"]

    def test_result_geometry(self):
        est = np.array([[0.5, 0.5], [1.5, 0.5]])
        mask = np.array([True, True])
        res = LocalizationResult(est, mask, "t")
        names = [v.name for v in check_result_geometry(res, 1.0, 1.0)]
        assert names == ["estimate-in-field"]
        anchors = np.array([False, True])
        res2 = LocalizationResult(
            np.array([[0.5, 0.5], [0.6, 0.6]]), np.array([True, False]), "t"
        )
        names = [
            v.name for v in check_result_geometry(res2, 1.0, 1.0, anchor_mask=anchors)
        ]
        assert names == ["localized-superset-anchors"]

    def test_round_accounting(self, ranging_ctx):
        result, stats = _run_distributed(ranging_ctx, with_stats=True)
        K = result.extras["grid"].n_cells
        anchor_broadcasts = result.messages_sent - sum(s.messages for s in stats)
        from repro.core.bnloc import _ANCHOR_BROADCAST_BYTES

        assert (
            check_round_accounting(
                result, stats, anchor_broadcasts, _ANCHOR_BROADCAST_BYTES, K * 8
            )
            == []
        )
        # a leaked message must trip conservation
        result.messages_sent += 1
        bad = check_round_accounting(
            result, stats, anchor_broadcasts, _ANCHOR_BROADCAST_BYTES, K * 8
        )
        assert "accounting-messages-conserved" in [v.name for v in bad]

    def test_bundle_covers_beliefs(self, ranging_ctx):
        res = _run_grid(ranging_ctx)
        ms = ranging_ctx.measurements
        assert (
            audit_localization_result(
                res, ms.width, ms.height, anchor_mask=ms.anchor_mask
            )
            == []
        )
        u = next(iter(res.extras["beliefs"]))
        res.extras["beliefs"][u] = res.extras["beliefs"][u] * 2.0
        names = [
            v.name
            for v in audit_localization_result(
                res, ms.width, ms.height, anchor_mask=ms.anchor_mask
            )
        ]
        assert "belief-normalized" in names


class TestAuditorAndModes:
    def test_mode_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert resolve_audit_mode(None) is None
        assert resolve_audit_mode("off") is None
        assert resolve_audit_mode("warn") == "warn"
        assert resolve_audit_mode("raise") == "raise"
        monkeypatch.setenv("REPRO_AUDIT", "warn")
        assert resolve_audit_mode(None) == "warn"
        assert resolve_audit_mode("off") is None  # config wins
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert resolve_audit_mode(None) == "raise"
        monkeypatch.setenv("REPRO_AUDIT", "0")
        assert resolve_audit_mode(None) is None
        with pytest.raises(ValueError):
            resolve_audit_mode("loud")

    def test_warn_and_raise(self):
        v = AuditViolation("x", "boom", {"k": 1})
        a = Auditor("warn", solver="s")
        a.extend([v])
        with pytest.warns(RuntimeWarning, match="boom"):
            a.finish()
        b = Auditor("raise")
        b.extend([v])
        with pytest.raises(AuditError, match="boom"):
            b.finish()
        # clean finish is silent
        Auditor("raise").finish()

    def test_solver_raise_mode_clean_run(self, ranging_ctx):
        from repro.core.bnloc import GridBPConfig, GridBPLocalizer

        cfg = GridBPConfig(grid_size=8, max_iterations=4, audit="raise")
        res = GridBPLocalizer(prior=ranging_ctx.prior, config=cfg).localize(
            ranging_ctx.measurements
        )
        assert res.localized_mask.all()

    def test_env_toggle_reaches_solver(self, ranging_ctx, monkeypatch):
        from repro.core.bnloc import GridBPConfig, GridBPLocalizer

        monkeypatch.setenv("REPRO_AUDIT", "raise")
        cfg = GridBPConfig(grid_size=8, max_iterations=4)
        res = GridBPLocalizer(prior=ranging_ctx.prior, config=cfg).localize(
            ranging_ctx.measurements
        )
        assert res.localized_mask.all()

    def test_config_rejects_bad_mode(self):
        from repro.core.bnloc import GridBPConfig
        from repro.core.nbp import NBPConfig

        with pytest.raises(ValueError):
            GridBPConfig(audit="loud")
        with pytest.raises(ValueError):
            NBPConfig(audit="loud")


# --------------------------------------------------------------------- #
# corpus + manifest
# --------------------------------------------------------------------- #
class TestCorpus:
    def test_deterministic(self):
        a = make_corpus("smoke")
        b = make_corpus("smoke")
        assert [s.scenario_id for s in a] == [s.scenario_id for s in b]
        assert a == b

    def test_full_superset_of_smoke(self):
        smoke = {s.scenario_id for s in make_corpus("smoke")}
        full = {s.scenario_id for s in make_corpus("full")}
        assert smoke < full

    def test_unknown_corpus(self):
        with pytest.raises(ValueError):
            make_corpus("nightly")

    def test_manifest_roundtrip(self, tmp_path):
        from repro.audit import save_manifest

        corpus = make_corpus("smoke")
        path = tmp_path / "m.json"
        save_manifest(corpus, "smoke", path)
        assert load_manifest(path) == corpus

    def test_pinned_manifest_matches_code(self):
        """tests/data pin == what the code generates, so any corpus edit
        must consciously regenerate the replay file."""
        path = os.path.join(DATA, "audit_corpus_smoke.json")
        assert load_manifest(path) == make_corpus("smoke")
        with open(path, encoding="utf-8") as fh:
            on_disk = json.load(fh)
        assert on_disk == json.loads(
            json.dumps(manifest_dict(make_corpus("smoke"), "smoke"))
        )

    def test_manifest_schema_guard(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 99, "scenarios": []}))
        with pytest.raises(ValueError, match="schema"):
            load_manifest(path)


# --------------------------------------------------------------------- #
# differential harness: each tier passes, and each tier detects breakage
# --------------------------------------------------------------------- #
def _broken_bit_runner(ctx):
    res = _run_grid(ctx)
    res.estimates = res.estimates.copy()
    u = int(np.flatnonzero(~ctx.measurements.anchor_mask)[0])
    res.estimates[u, 0] += 1e-9  # one ULP-scale nudge must be caught
    return res


def _broken_statistical_runner(ctx):
    res = _run_grid(ctx)
    res.estimates = res.estimates.copy()
    unknown = ~ctx.measurements.anchor_mask
    # shift every unknown estimate by 2 radio ranges: far outside any band
    res.estimates[unknown, 0] = np.clip(
        res.estimates[unknown, 0] + 2 * ctx.radio_range, 0, ctx.measurements.width
    )
    return res


def _broken_invariant_runner(ctx):
    res = _run_grid(ctx)
    res.estimates = res.estimates.copy()
    u = int(np.flatnonzero(~ctx.measurements.anchor_mask)[0])
    res.estimates[u] = (ctx.measurements.width + 0.5, -0.25)
    return res


class TestHarnessTiers:
    def test_bit_tier_passes(self, ranging_ctx):
        case = DiffCase(
            "central-vs-distributed", "bit", run_ref=_run_grid, run_alt=_run_distributed
        )
        report = run_case(case, ranging_ctx)
        assert report.passed and report.detail["max_deviation"] == 0.0

    def test_bit_tier_detects_single_ulp(self, ranging_ctx):
        case = DiffCase(
            "broken-bit", "bit", run_ref=_run_grid, run_alt=_broken_bit_runner
        )
        report = run_case(case, ranging_ctx)
        assert not report.passed
        assert report.detail["mismatch"] == "estimates"

    def test_statistical_tier_passes(self, ranging_ctx):
        case = DiffCase(
            "nbp-vs-grid", "statistical", run_ref=_run_grid, run_alt=_run_nbp, tol=0.75
        )
        assert run_case(case, ranging_ctx).passed

    def test_statistical_tier_detects_shift(self, ranging_ctx):
        case = DiffCase(
            "broken-stat",
            "statistical",
            run_ref=_run_grid,
            run_alt=_broken_statistical_runner,
            tol=0.75,
        )
        report = run_case(case, ranging_ctx)
        assert not report.passed
        assert report.detail["mismatch"] == "accuracy band"

    def test_invariant_tier_passes(self, ranging_ctx):
        case = DiffCase("grid-invariants", "invariant", run_ref=_run_grid)
        report = run_case(case, ranging_ctx)
        assert report.passed and not report.violations

    def test_invariant_tier_detects_out_of_field(self, ranging_ctx):
        case = DiffCase(
            "broken-invariant", "invariant", run_ref=_broken_invariant_runner
        )
        report = run_case(case, ranging_ctx)
        assert not report.passed
        assert "estimate-in-field" in [v.name for v in report.violations]

    def test_invariants_guard_every_tier(self, ranging_ctx):
        """A bit-equal pair that is *broken the same way* still fails."""
        case = DiffCase(
            "both-broken",
            "bit",
            run_ref=_broken_invariant_runner,
            run_alt=_broken_invariant_runner,
        )
        report = run_case(case, ranging_ctx)
        assert not report.passed and report.violations

    def test_case_validation(self):
        with pytest.raises(ValueError, match="tier"):
            DiffCase("x", "fuzzy", run_ref=_run_grid)
        with pytest.raises(ValueError, match="run_alt"):
            DiffCase("x", "bit", run_ref=_run_grid)


class TestRunCorpusSmoke:
    """The tier-1 smoke lane: the full standing matrix must be green."""

    @pytest.fixture(scope="class")
    def reports(self):
        return run_corpus("smoke")

    def test_all_clear(self, reports):
        failed = [r for r in reports if not r.passed]
        assert not failed, summarize(reports)

    def test_every_tier_exercised(self, reports):
        assert {r.tier for r in reports} == {"bit", "statistical", "invariant"}

    def test_summarize_renders(self, reports):
        text = summarize(reports)
        assert "all clear" in text and "bit:" in text
        assert summarize([]).startswith("no audit cases ran")

    @pytest.mark.slow
    def test_worker_count_bit_identity(self):
        spec = _spec("smoke-ranging-pk")
        from repro.audit.harness import default_cases

        case = {c.name: c for c in default_cases()}["workers-1-vs-2"]
        assert run_case(case, ScenarioContext(spec)).passed


# --------------------------------------------------------------------- #
# regression pins for the bugs the harness surfaced
# --------------------------------------------------------------------- #
class TestHarnessBugRegressions:
    def test_rangefree_central_vs_distributed_bit_identical(self):
        """Pinned: smoke-rangefree once diverged at the last ulp because
        the centralized solver used a dense connectivity potential (BLAS
        gemv) while the distributed one used CSR matvec."""
        ctx = ScenarioContext(_spec("smoke-rangefree"))
        case = DiffCase(
            "central-vs-distributed", "bit", run_ref=_run_grid, run_alt=_run_distributed
        )
        report = run_case(case, ctx)
        assert report.passed, report.detail

    def test_nbp_estimates_stay_in_field(self):
        """Pinned: smoke-dense-anchors once produced NBP estimates outside
        the deployment field — unclipped proposals survived reweighting
        under the unbounded Gaussian pre-knowledge prior."""
        ctx = ScenarioContext(_spec("smoke-dense-anchors"))
        res = _run_nbp(ctx)
        ms = ctx.measurements
        assert check_result_geometry(res, ms.width, ms.height) == []
        est = res.estimates[res.localized_mask]
        assert (est[:, 0] >= 0).all() and (est[:, 0] <= ms.width).all()
        assert (est[:, 1] >= 0).all() and (est[:, 1] <= ms.height).all()


class TestDegenerateInbox:
    """SensorNodeAgent must survive an all--inf summed potential without
    emitting NaN messages or beliefs (the psi.dot(exp(h)) poison path)."""

    def _agent(self, K=4):
        from repro.parallel.messaging import SensorNodeAgent

        psi = np.full((K, K), 1.0 / K)
        agent = SensorNodeAgent(0, log_phi=np.full(K, -np.inf))
        agent.add_neighbor(1, psi, K)
        agent.reset_memory(K)
        return agent, K

    def test_outgoing_uniform_not_nan(self):
        agent, K = self._agent()
        out = agent.compute_outgoing(damping=0.0)
        np.testing.assert_allclose(out[1], np.full(K, 1.0 / K))
        assert np.isfinite(out[1]).all()

    def test_outgoing_with_damping(self):
        agent, K = self._agent()
        out = agent.compute_outgoing(damping=0.5)
        assert np.isfinite(out[1]).all()
        np.testing.assert_allclose(out[1].sum(), 1.0)

    def test_belief_uniform_not_nan(self):
        agent, K = self._agent()
        np.testing.assert_allclose(agent.belief(), np.full(K, 1.0 / K))

    def test_zeroed_inbox_message(self):
        # a fault-zeroed incoming message: log(0) = -inf enters `total`
        agent, K = self._agent()
        agent.log_phi = np.zeros(K)
        agent.inbox[1] = np.zeros(K)
        out = agent.compute_outgoing(damping=0.0)
        assert np.isfinite(out[1]).all()
        assert np.isfinite(agent.belief()).all()


class TestCLIAudit:
    def test_cli_smoke_green(self, capsys):
        from repro.cli import main

        assert main(["audit", "--corpus", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "all clear" in out

    def test_cli_manifest_export(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "manifest.json"
        assert main(["audit", "--manifest", str(path)]) == 0
        assert load_manifest(path) == make_corpus("smoke")


# --------------------------------------------------------------------- #
# checkpoint/resume lane (repro.ckpt × repro.audit)
# --------------------------------------------------------------------- #
class TestDelayConservation:
    def test_balanced_ledger_passes(self):
        from repro.audit import check_delay_conservation

        assert check_delay_conservation({}) == []
        assert (
            check_delay_conservation(
                {
                    "messages_delayed": 5,
                    "messages_arrived_late": 2,
                    "messages_delayed_expired": 1,
                    "messages_in_flight_at_end": 2,
                }
            )
            == []
        )

    def test_vanished_messages_flagged(self):
        from repro.audit import check_delay_conservation

        violations = check_delay_conservation(
            {"messages_delayed": 5, "messages_arrived_late": 2}
        )
        assert len(violations) == 1
        v = violations[0]
        assert v.name == "delay-conservation"
        assert v.context["delayed"] == 5
        assert v.context["in_flight_at_end"] == 0


@pytest.mark.ckpt
class TestCkptDiffCase:
    """The resume guarantee is part of the standing audit matrix: an
    interrupted-then-resumed evaluation must match the uninterrupted one
    at the *bit* tier."""

    def _case(self):
        from repro.audit import default_cases

        cases = {c.name: c for c in default_cases()}
        assert "ckpt-resume-vs-uninterrupted" in cases
        return cases["ckpt-resume-vs-uninterrupted"]

    def test_registered_at_bit_tier_in_default_lane(self):
        case = self._case()
        assert case.tier == "bit"
        assert not getattr(case, "slow", False)

    def test_passes_on_smoke_scenario(self, ranging_ctx):
        report = run_case(self._case(), ranging_ctx)
        assert report.passed, report.detail
