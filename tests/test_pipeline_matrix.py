"""End-to-end compatibility matrix.

Every radio model × every ranging model × every applicable localizer must
run through the full pipeline without errors and produce sane output.
These tests guard the combinatorial surface that unit tests (one module at
a time) cannot.
"""

import numpy as np
import pytest

from repro.baselines import (
    CentroidLocalizer,
    DVHopLocalizer,
    MDSMAPLocalizer,
    MLELocalizer,
    MultilaterationLocalizer,
    WeightedCentroidLocalizer,
)
from repro.core import CooperativeLocalizer, GridBPConfig, GridBPLocalizer, NBPConfig, NBPLocalizer
from repro.measurement import (
    ConnectivityOnly,
    GaussianRanging,
    NLOSRanging,
    PathLossModel,
    ProportionalGaussianRanging,
    RSSIRanging,
    TOARanging,
    observe,
)
from repro.network import (
    IrregularRadio,
    LogNormalShadowingRadio,
    NetworkConfig,
    QuasiUnitDiskRadio,
    UnitDiskRadio,
    generate_network,
)

RADIOS = {
    "disk": UnitDiskRadio(0.3),
    "qudg": QuasiUnitDiskRadio(0.3, alpha=0.7),
    "lognormal": LogNormalShadowingRadio(0.3, shadowing_db=3.0),
    "doi": IrregularRadio(0.3, doi=0.2),
}

RANGINGS = {
    "gaussian": GaussianRanging(0.02),
    "proportional": ProportionalGaussianRanging(0.1),
    "rssi": RSSIRanging(PathLossModel(shadowing_db=3.0)),
    "toa": TOARanging(sigma_time=0.01, mean_delay=0.005),
    "nlos": NLOSRanging(GaussianRanging(0.02), 0.2, 0.1),
    "none": ConnectivityOnly(),
}

GRID_CFG = GridBPConfig(grid_size=12, max_iterations=5)


def _network(radio, seed=0):
    return generate_network(
        NetworkConfig(
            n_nodes=35, anchor_ratio=0.2, radio=radio, require_connected=True
        ),
        rng=seed,
    )


@pytest.mark.parametrize("radio_name", sorted(RADIOS))
@pytest.mark.parametrize("ranging_name", sorted(RANGINGS))
def test_grid_bp_runs_on_every_combination(radio_name, ranging_name):
    radio = RADIOS[radio_name]
    net = _network(radio)
    ms = observe(net, RANGINGS[ranging_name], rng=1)
    res = GridBPLocalizer(radio=radio, config=GRID_CFG).localize(ms)
    assert res.localized_mask.all()
    err = res.errors(net.positions)
    assert np.isfinite(err[~net.anchor_mask]).all()
    # sanity: beats placing everything at the field corner
    corner = np.linalg.norm(net.positions[~net.anchor_mask], axis=1).mean()
    assert np.nanmean(err[~net.anchor_mask]) < corner


@pytest.mark.parametrize("ranging_name", ["gaussian", "rssi", "toa"])
def test_nbp_runs_on_ranged_models(ranging_name):
    net = _network(UnitDiskRadio(0.3), seed=2)
    ms = observe(net, RANGINGS[ranging_name], rng=3)
    res = NBPLocalizer(config=NBPConfig(n_particles=60, n_iterations=2)).localize(
        ms, rng=4
    )
    assert res.localized_mask.all()


BASELINES_RANGED = [
    WeightedCentroidLocalizer(),
    MDSMAPLocalizer(),
    MultilaterationLocalizer(),
    MLELocalizer(),
]
BASELINES_RANGEFREE = [CentroidLocalizer(), DVHopLocalizer(), MDSMAPLocalizer()]


@pytest.mark.parametrize(
    "localizer", BASELINES_RANGED, ids=lambda l: l.name
)
@pytest.mark.parametrize("ranging_name", ["gaussian", "rssi", "toa", "nlos"])
def test_ranged_baselines_run(localizer, ranging_name):
    net = _network(UnitDiskRadio(0.3), seed=5)
    ms = observe(net, RANGINGS[ranging_name], rng=6)
    res = localizer.localize(ms, rng=7)
    err = res.errors(net.positions)
    localized_unknown = res.localized_mask & ~net.anchor_mask
    if localized_unknown.any():
        assert np.isfinite(err[localized_unknown]).all()


@pytest.mark.parametrize(
    "localizer", BASELINES_RANGEFREE, ids=lambda l: l.name
)
@pytest.mark.parametrize("radio_name", sorted(RADIOS))
def test_rangefree_baselines_run_on_every_radio(localizer, radio_name):
    net = _network(RADIOS[radio_name], seed=8)
    ms = observe(net, ConnectivityOnly(), rng=9)
    res = localizer.localize(ms, rng=10)
    assert res.localized_mask[net.anchor_mask].all()


def test_pipeline_facade_matrix():
    net = _network(UnitDiskRadio(0.3), seed=11)
    for method in ("grid-bp", "nbp"):
        loc = CooperativeLocalizer(
            method,
            grid_config=GRID_CFG,
            nbp_config=NBPConfig(n_particles=50, n_iterations=2),
        )
        res, err = loc.evaluate(net, GaussianRanging(0.02), rng=12)
        assert np.nanmean(err[~net.anchor_mask]) < 0.3
