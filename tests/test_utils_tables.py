"""Unit tests for repro.utils.tables and repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.tables import format_series, format_table
from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positions,
    check_positive,
    check_probability,
)


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.5000" in out and "0.1250" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="T1")
        assert out.splitlines()[0] == "T1"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_precision(self):
        out = format_table(["v"], [[1 / 3]], precision=2)
        assert "0.33" in out and "0.333" not in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out

    def test_bool_cell(self):
        out = format_table(["ok"], [[True]])
        assert "True" in out


class TestFormatSeries:
    def test_basic(self):
        out = format_series(
            "x", [1, 2, 3], {"m1": [0.1, 0.2, 0.3], "m2": [1.0, 2.0, 3.0]}
        )
        assert "m1" in out and "m2" in out
        assert len(out.splitlines()) == 5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"m": [0.1]})


class TestValidation:
    def test_check_positive(self):
        assert check_positive(2, "v") == 2.0
        for bad in (0, -1, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive(bad, "v")

    def test_check_nonnegative(self):
        assert check_nonnegative(0, "v") == 0.0
        with pytest.raises(ValueError):
            check_nonnegative(-0.1, "v")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        assert check_probability(0, "p") == 0.0
        assert check_probability(1, "p") == 1.0
        for bad in (-0.01, 1.01, float("nan")):
            with pytest.raises(ValueError):
                check_probability(bad, "p")

    def test_check_in_range(self):
        assert check_in_range(3, 1, 5, "v") == 3.0
        with pytest.raises(ValueError):
            check_in_range(6, 1, 5, "v")

    def test_check_positions(self):
        pos = check_positions([[0.0, 1.0], [2.0, 3.0]])
        assert pos.shape == (2, 2)
        with pytest.raises(ValueError):
            check_positions(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            check_positions(np.array([[0.0, np.nan]]))
