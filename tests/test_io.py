"""Round-trip tests for repro.io."""

import numpy as np
import pytest

from repro.core import GridBPConfig, GridBPLocalizer
from repro.io import (
    load_network_json,
    load_network_npz,
    network_from_dict,
    network_to_dict,
    result_to_dict,
    save_network_json,
    save_network_npz,
    save_result_json,
)
from repro.measurement import GaussianRanging, observe
from repro.network import NetworkConfig, generate_network


@pytest.fixture(scope="module")
def net():
    return generate_network(NetworkConfig(n_nodes=30, anchor_ratio=0.2), rng=0)


def assert_networks_equal(a, b):
    np.testing.assert_allclose(a.positions, b.positions)
    np.testing.assert_array_equal(a.anchor_mask, b.anchor_mask)
    np.testing.assert_array_equal(a.adjacency, b.adjacency)
    assert a.width == b.width and a.height == b.height
    assert a.radio_range == b.radio_range


class TestNetworkRoundTrip:
    def test_dict_round_trip(self, net):
        assert_networks_equal(net, network_from_dict(network_to_dict(net)))

    def test_json_round_trip(self, net, tmp_path):
        p = tmp_path / "net.json"
        save_network_json(net, p)
        assert_networks_equal(net, load_network_json(p))

    def test_npz_round_trip(self, net, tmp_path):
        p = tmp_path / "net.npz"
        save_network_npz(net, p)
        assert_networks_equal(net, load_network_npz(p))

    def test_missing_key(self):
        with pytest.raises(ValueError):
            network_from_dict({"positions": [[0, 0]]})

    def test_bad_edges(self, net):
        d = network_to_dict(net)
        d["edges"] = [[0, 999]]
        with pytest.raises(ValueError):
            network_from_dict(d)

    def test_edgeless_network(self):
        d = {
            "positions": [[0.1, 0.1], [0.9, 0.9], [0.5, 0.5], [0.2, 0.8]],
            "anchor_mask": [1, 1, 1, 0],
            "edges": [],
        }
        net = network_from_dict(d)
        assert not net.adjacency.any()


class TestResultSerialization:
    def test_result_to_dict(self, net, tmp_path):
        ms = observe(net, GaussianRanging(0.02), rng=1)
        res = GridBPLocalizer(config=GridBPConfig(grid_size=10, max_iterations=3)).localize(ms)
        d = result_to_dict(res)
        assert d["method"] == "grid-bp"
        assert len(d["estimates"]) == net.n_nodes
        assert d["messages_sent"] > 0
        p = tmp_path / "res.json"
        save_result_json(res, p)
        import json

        loaded = json.loads(p.read_text())
        assert loaded["method"] == "grid-bp"

    def test_unlocalized_nodes_become_null(self):
        from repro.core.result import LocalizationResult

        est = np.array([[0.5, 0.5], [np.nan, np.nan]])
        res = LocalizationResult(est, np.array([True, False]), "m")
        d = result_to_dict(res)
        assert d["estimates"][1] == [None, None]
