"""Round-trip tests for repro.io."""

import numpy as np
import pytest

from repro.core import GridBPConfig, GridBPLocalizer
from repro.io import (
    atomic_write_text,
    load_network_json,
    load_network_npz,
    network_from_dict,
    network_to_dict,
    result_to_dict,
    save_network_json,
    save_network_npz,
    save_result_json,
)
from repro.measurement import GaussianRanging, observe
from repro.network import NetworkConfig, generate_network


@pytest.fixture(scope="module")
def net():
    return generate_network(NetworkConfig(n_nodes=30, anchor_ratio=0.2), rng=0)


def assert_networks_equal(a, b):
    np.testing.assert_allclose(a.positions, b.positions)
    np.testing.assert_array_equal(a.anchor_mask, b.anchor_mask)
    np.testing.assert_array_equal(a.adjacency, b.adjacency)
    assert a.width == b.width and a.height == b.height
    assert a.radio_range == b.radio_range


class TestNetworkRoundTrip:
    def test_dict_round_trip(self, net):
        assert_networks_equal(net, network_from_dict(network_to_dict(net)))

    def test_json_round_trip(self, net, tmp_path):
        p = tmp_path / "net.json"
        save_network_json(net, p)
        assert_networks_equal(net, load_network_json(p))

    def test_npz_round_trip(self, net, tmp_path):
        p = tmp_path / "net.npz"
        save_network_npz(net, p)
        assert_networks_equal(net, load_network_npz(p))

    def test_missing_key(self):
        with pytest.raises(ValueError):
            network_from_dict({"positions": [[0, 0]]})

    def test_bad_edges(self, net):
        d = network_to_dict(net)
        d["edges"] = [[0, 999]]
        with pytest.raises(ValueError):
            network_from_dict(d)

    def test_edgeless_network(self):
        d = {
            "positions": [[0.1, 0.1], [0.9, 0.9], [0.5, 0.5], [0.2, 0.8]],
            "anchor_mask": [1, 1, 1, 0],
            "edges": [],
        }
        net = network_from_dict(d)
        assert not net.adjacency.any()


class TestResultSerialization:
    def test_result_to_dict(self, net, tmp_path):
        ms = observe(net, GaussianRanging(0.02), rng=1)
        res = GridBPLocalizer(config=GridBPConfig(grid_size=10, max_iterations=3)).localize(ms)
        d = result_to_dict(res)
        assert d["method"] == "grid-bp"
        assert len(d["estimates"]) == net.n_nodes
        assert d["messages_sent"] > 0
        p = tmp_path / "res.json"
        save_result_json(res, p)
        import json

        loaded = json.loads(p.read_text())
        assert loaded["method"] == "grid-bp"

    def test_unlocalized_nodes_become_null(self):
        from repro.core.result import LocalizationResult

        est = np.array([[0.5, 0.5], [np.nan, np.nan]])
        res = LocalizationResult(est, np.array([True, False]), "m")
        d = result_to_dict(res)
        assert d["estimates"][1] == [None, None]


class TestAtomicWrites:
    """The torn-write regression lane: ``atomic_write_text`` must never
    leave a partially written target, and the JSON savers ride on it."""

    def test_write_and_overwrite(self, tmp_path):
        p = tmp_path / "f.txt"
        atomic_write_text(p, "first")
        assert p.read_text() == "first"
        atomic_write_text(p, "second")
        assert p.read_text() == "second"
        assert not p.with_name("f.txt.tmp").exists()

    def test_fsync_failure_preserves_original(self, tmp_path, monkeypatch):
        import os

        p = tmp_path / "f.txt"
        p.write_text("precious")
        monkeypatch.setattr(os, "fsync", lambda fd: (_ for _ in ()).throw(OSError("disk full")))
        with pytest.raises(OSError, match="disk full"):
            atomic_write_text(p, "half-written garbage")
        assert p.read_text() == "precious"  # old content fully intact
        assert not p.with_name("f.txt.tmp").exists()  # tmp cleaned up

    def test_replace_failure_preserves_original(self, tmp_path, monkeypatch):
        import os

        p = tmp_path / "f.txt"
        p.write_text("precious")
        real_replace = os.replace

        def failing_replace(src, dst):
            raise OSError("crossed a filesystem boundary")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError):
            atomic_write_text(p, "new")
        monkeypatch.setattr(os, "replace", real_replace)
        assert p.read_text() == "precious"
        assert not p.with_name("f.txt.tmp").exists()

    def test_save_network_json_is_atomic(self, net, tmp_path, monkeypatch):
        import json
        import os

        p = tmp_path / "net.json"
        save_network_json(net, p)
        before = p.read_text()
        monkeypatch.setattr(os, "fsync", lambda fd: (_ for _ in ()).throw(OSError("boom")))
        with pytest.raises(OSError):
            save_network_json(net, p)
        # the crash mid-save did not corrupt the on-disk network
        assert p.read_text() == before
        assert_networks_equal(net, network_from_dict(json.loads(before)))
