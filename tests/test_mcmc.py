"""Tests for the sampling-based continuous-posterior localizer (repro.core.mcmc).

Fast lane: short chains (not converged — that is fine, the assertions are
structural: reproducibility, geometry, diagnostics plumbing, calibration
without a quantization floor, fallback behaviour).  The converged long-chain
test runs behind ``-m "mcmc and slow"``.
"""

import numpy as np
import pytest

from repro.core import MCMCConfig, MCMCLocalizer
from repro.core.mcmc import effective_sample_size, split_rhat
from repro.experiments import ScenarioConfig, build_scenario
from repro.metrics import calibration_ratio, coverage_at_sigma, predicted_rms
from repro.obs import Tracer
from repro.priors.base import PositionPrior

pytestmark = pytest.mark.mcmc

FAST = MCMCConfig(n_chains=2, n_samples=40, burn_in=30, step_scale=0.25)


@pytest.fixture(scope="module")
def scenario():
    cfg = ScenarioConfig(
        n_nodes=30, anchor_ratio=0.2, radio_range=0.3, pk_error=0.08
    )
    return build_scenario(cfg, seed=5)


@pytest.fixture(scope="module")
def result(scenario):
    net, ms, prior = scenario
    loc = MCMCLocalizer(prior=prior, config=FAST)
    return loc.localize(ms, np.random.default_rng(11))


class TestReproducibility:
    def test_same_seed_bit_identical(self, scenario):
        net, ms, prior = scenario
        loc = MCMCLocalizer(prior=prior, config=FAST)
        a = loc.localize(ms, np.random.default_rng(3))
        b = loc.localize(ms, np.random.default_rng(3))
        np.testing.assert_array_equal(a.estimates, b.estimates)
        np.testing.assert_array_equal(
            a.extras["covariances"], b.extras["covariances"]
        )
        assert a.extras["diagnostics"] == b.extras["diagnostics"]

    def test_different_seed_diverges(self, scenario):
        net, ms, prior = scenario
        loc = MCMCLocalizer(prior=prior, config=FAST)
        a = loc.localize(ms, np.random.default_rng(3))
        b = loc.localize(ms, np.random.default_rng(4))
        assert not np.array_equal(
            a.estimates[~net.anchor_mask], b.estimates[~net.anchor_mask]
        )


class TestResultGeometry:
    def test_all_nodes_localized_in_field(self, scenario, result):
        net, ms, _ = scenario
        assert result.localized_mask.all()
        assert np.isfinite(result.estimates).all()
        assert (result.estimates[:, 0] >= 0).all()
        assert (result.estimates[:, 0] <= ms.width).all()
        assert (result.estimates[:, 1] >= 0).all()
        assert (result.estimates[:, 1] <= ms.height).all()

    def test_anchors_pinned_exactly(self, scenario, result):
        net, ms, _ = scenario
        np.testing.assert_array_equal(
            result.estimates[net.anchor_mask],
            ms.anchor_positions_full[net.anchor_mask],
        )

    def test_better_than_prior_alone(self, scenario, result):
        # even short chains must beat just reading off the noisy
        # pre-knowledge (pk_error = 0.08)
        net, _, _ = scenario
        err = result.errors(net.positions)[~net.anchor_mask]
        assert np.nanmean(err) < 0.08


class TestUncertaintyExtras:
    def test_covariance_shapes_and_masks(self, scenario, result):
        net, _, _ = scenario
        cov = result.extras["covariances"]
        assert cov.shape == (net.n_nodes, 2, 2)
        assert np.isnan(cov[net.anchor_mask]).all()
        unknown_cov = cov[~net.anchor_mask & ~result.fallback_mask]
        assert np.isfinite(unknown_cov).all()
        # symmetric, non-negative marginal variances
        np.testing.assert_allclose(
            unknown_cov[:, 0, 1], unknown_cov[:, 1, 0]
        )
        assert (unknown_cov[:, 0, 0] >= 0).all()
        assert (unknown_cov[:, 1, 1] >= 0).all()

    def test_diagnostics_keys(self, result):
        d = result.extras["diagnostics"]
        assert set(d) == {
            "acceptance_rate",
            "max_split_rhat",
            "min_ess",
            "n_chains",
            "kept_per_chain",
        }
        assert 0.0 < d["acceptance_rate"] <= 1.0
        assert d["n_chains"] == 2 and d["kept_per_chain"] == 40
        assert d["min_ess"] > 0

    def test_keep_samples_tensor(self, scenario):
        net, ms, prior = scenario
        cfg = MCMCConfig(
            n_chains=2, n_samples=10, burn_in=5, thin=2,
            step_scale=0.25, keep_samples=True,
        )
        res = MCMCLocalizer(prior=prior, config=cfg).localize(
            ms, np.random.default_rng(0)
        )
        n_unknown = int((~net.anchor_mask).sum())
        assert res.extras["samples"].shape == (2, 10, n_unknown, 2)

    def test_calibration_metrics_run_without_grid(self, scenario, result):
        # the covariance path: no grid extras, no quantization floor
        net, _, _ = scenario
        assert "grid" not in result.extras
        pred = predicted_rms(result)
        assert np.isnan(pred[net.anchor_mask]).all()
        ok = ~net.anchor_mask & ~result.fallback_mask
        assert np.isfinite(pred[ok]).all()
        ratio = calibration_ratio(result, net.positions)
        assert np.isfinite(ratio) and ratio > 0
        cov1 = coverage_at_sigma(result, net.positions, 1.0)
        assert 0.0 <= cov1 <= 1.0


class TestDiagnosticsFunctions:
    def test_split_rhat_identical_chains(self):
        rng = np.random.default_rng(0)
        row = rng.normal(size=200)
        draws = np.stack([row, row])
        assert split_rhat(draws) == pytest.approx(1.0, abs=0.05)

    def test_split_rhat_separated_chains(self):
        rng = np.random.default_rng(1)
        draws = np.stack(
            [rng.normal(0, 1, 200), rng.normal(50, 1, 200)]
        )
        assert split_rhat(draws) > 3.0

    def test_split_rhat_catches_drift_within_one_chain(self):
        # split halves expose a trend even with a single chain
        drifting = np.linspace(0, 10, 400)[None, :]
        assert split_rhat(drifting) > 1.5

    def test_split_rhat_too_short_is_nan(self):
        assert np.isnan(split_rhat(np.zeros((2, 3))))

    def test_split_rhat_constant_chains(self):
        # exactly-constant chains hit the W == 0 short-circuit; a constant
        # with float-rounding jitter lands a hair under 1 via the ddof term
        assert split_rhat(np.zeros((2, 100))) == 1.0
        assert split_rhat(np.full((2, 100), 0.7)) == pytest.approx(1.0, abs=0.02)

    def test_ess_iid_close_to_n(self):
        rng = np.random.default_rng(2)
        draws = rng.normal(size=(2, 500))
        ess = effective_sample_size(draws)
        assert 500 < ess <= 1100

    def test_ess_correlated_much_smaller(self):
        rng = np.random.default_rng(3)
        n = 500
        x = np.empty((1, n))
        x[0, 0] = 0.0
        for t in range(1, n):
            x[0, t] = 0.98 * x[0, t - 1] + rng.normal() * 0.02
        assert effective_sample_size(x) < 100


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_chains": 0},
            {"n_samples": 3},
            {"burn_in": -1},
            {"k_try": 1},
            {"step_scale": 0.0},
            {"thin": 0},
            {"prior_grid_size": 1},
            {"rhat_tol": 1.0},
            {"audit": "loud"},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            MCMCConfig(**kwargs)


class TestModalities:
    def test_range_free_connectivity_only(self):
        cfg = ScenarioConfig(
            n_nodes=30, anchor_ratio=0.25, radio_range=0.35,
            ranging="none", pk_error=0.08,
        )
        net, ms, prior = build_scenario(cfg, seed=9)
        res = MCMCLocalizer(prior=prior, config=FAST).localize(
            ms, np.random.default_rng(1)
        )
        assert res.localized_mask.all()
        err = res.errors(net.positions)[~net.anchor_mask]
        assert np.nanmean(err) < 0.2

    def test_no_prior_defaults_to_uniform(self, scenario):
        net, ms, _ = scenario
        res = MCMCLocalizer(config=FAST).localize(
            ms, np.random.default_rng(2)
        )
        err = res.errors(net.positions)[~net.anchor_mask]
        assert np.nanmean(err) < 0.5 * net.radio_range * 2


class _OutOfFieldPrior(PositionPrior):
    """Pathological prior: uniform density but samples outside the field,
    so every chain initializes in the hard-support dead zone."""

    def log_density(self, node, points):
        return np.zeros(len(points))

    def sample(self, node, n, grid, rng=None):
        return np.full((int(n), 2), -5.0)


class TestFallback:
    def test_never_finite_nodes_fall_back(self, scenario):
        net, ms, _ = scenario
        # a microscopic step keeps all candidates out of the field too
        cfg = MCMCConfig(
            n_chains=1, n_samples=4, burn_in=2, step_scale=1e-9
        )
        res = MCMCLocalizer(prior=_OutOfFieldPrior(), config=cfg).localize(
            ms, np.random.default_rng(0)
        )
        unknown = ~net.anchor_mask
        assert res.fallback_mask[unknown].all()
        assert not res.fallback_mask[net.anchor_mask].any()
        assert np.isfinite(res.estimates).all()
        assert np.isnan(res.extras["covariances"][unknown]).all()


class TestTelemetry:
    def test_tracer_counters_and_annotations(self, scenario):
        net, ms, prior = scenario
        tracer = Tracer()
        MCMCLocalizer(prior=prior, config=FAST, tracer=tracer).localize(
            ms, np.random.default_rng(0)
        )
        snap = tracer.snapshot()
        assert snap["counters"]["mcmc_sweeps"] == 2 * (30 + 40)
        assert snap["counters"]["mcmc_proposals"] > 0
        assert snap["counters"]["mcmc_accepts"] > 0
        assert snap["meta"]["method"] == "mcmc"
        assert "max_split_rhat" in snap["meta"]
        assert "acceptance_rate" in snap["meta"]
        assert "localize" in snap["timers"]


class TestIntegrations:
    def test_registered_in_standard_methods(self):
        from repro.experiments import standard_methods

        methods = standard_methods(include=["mcmc", "mcmc-pk"], mcmc_samples=20)
        assert set(methods) == {"mcmc", "mcmc-pk"}

    def test_audit_case_registered_in_default_lane(self):
        from repro.audit import default_cases

        cases = {c.name: c for c in default_cases()}
        assert "mcmc-vs-grid" in cases
        case = cases["mcmc-vs-grid"]
        assert case.tier == "statistical"
        assert not case.slow

    @pytest.mark.audit
    def test_audit_case_passes_on_smoke_scenario(self):
        from repro.audit import ScenarioContext, default_cases, make_corpus, run_case

        spec = {s.scenario_id: s for s in make_corpus("smoke")}["smoke-ranging-pk"]
        case = {c.name: c for c in default_cases()}["mcmc-vs-grid"]
        report = run_case(case, ScenarioContext(spec))
        assert report.passed, report.detail


@pytest.mark.slow
class TestConvergedLongChains:
    def test_long_chains_converge_and_report_it(self, scenario):
        net, ms, prior = scenario
        cfg = MCMCConfig(
            n_chains=3, n_samples=600, burn_in=400, thin=2, step_scale=0.2
        )
        res = MCMCLocalizer(prior=prior, config=cfg).localize(
            ms, np.random.default_rng(21)
        )
        d = res.extras["diagnostics"]
        assert d["max_split_rhat"] <= cfg.rhat_tol, d
        assert res.converged
        err = res.errors(net.positions)[~net.anchor_mask]
        assert np.nanmean(err) < 0.12
