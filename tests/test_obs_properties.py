"""Property tests for trace invariants.

Two layers: hypothesis-driven properties of the :class:`Tracer` container
itself (counters are sums, gauges are maxima, timers nest), and
parametrized solver-level invariants — for every solver configuration the
exported trace must have non-negative residuals, monotone non-decreasing
cumulative message counts, parent timers covering their children, and a
:class:`NullTracer` run that is bit-identical to the traced one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GridBPConfig, GridBPLocalizer, NBPConfig, NBPLocalizer
from repro.measurement import GaussianRanging, observe
from repro.network import NetworkConfig, UnitDiskRadio, generate_network
from repro.obs import Tracer


@pytest.fixture(scope="module")
def scenario():
    net = generate_network(
        NetworkConfig(
            n_nodes=30,
            anchor_ratio=0.2,
            radio=UnitDiskRadio(0.3),
            require_connected=True,
        ),
        rng=21,
    )
    ms = observe(net, GaussianRanging(0.02), rng=22)
    return net, ms


# --------------------------------------------------------------------- #
# Hypothesis properties of the container
# --------------------------------------------------------------------- #
class TestTracerContainerProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=50))
    def test_counter_is_sum(self, increments):
        t = Tracer()
        for n in increments:
            t.count("c", n)
        assert t.counters.get("c", 0) == sum(increments)

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=50))
    def test_gauge_is_max(self, values):
        t = Tracer()
        for v in values:
            t.gauge_max("g", v)
        assert t.gauges["g"] == max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=30))
    def test_iteration_numbering_monotone(self, residuals):
        t = Tracer()
        for r in residuals:
            t.iteration(residual=r)
        numbers = [rec["iteration"] for rec in t.iterations]
        assert numbers == list(range(1, len(residuals) + 1))

    @given(st.lists(st.floats(min_value=1e-4, max_value=10.0), min_size=1, max_size=10))
    @settings(deadline=None)
    def test_parent_timer_covers_children(self, child_durations):
        # Deterministic clock advanced by hand: the parent interval always
        # contains every child interval.
        now = [0.0]

        def clock():
            return now[0]

        t = Tracer(clock=clock)
        with t.timer("parent"):
            for i, d in enumerate(child_durations):
                with t.timer(f"child{i}"):
                    now[0] += d
        children = sum(
            e["seconds"] for path, e in t.timers.items() if path != "parent"
        )
        assert t.timers["parent"]["seconds"] >= children - 1e-12


# --------------------------------------------------------------------- #
# Solver-level invariants, across configurations
# --------------------------------------------------------------------- #
GRID_CONFIGS = [
    GridBPConfig(grid_size=8, max_iterations=5, tol=1e-9),
    GridBPConfig(grid_size=8, max_iterations=5, tol=1e-9, damping=0.0),
    GridBPConfig(grid_size=8, max_iterations=4, tol=1e-9, schedule="serial"),
    GridBPConfig(grid_size=8, max_iterations=4, tol=1e-9, max_product=True,
                 estimator="map"),
]


def _check_trace_invariants(trace: dict) -> None:
    iterations = trace["iterations"]
    assert iterations, "traced solver produced no iteration records"
    residuals = [rec["residual"] for rec in iterations]
    assert all(np.isfinite(r) and r >= 0 for r in residuals)
    cums = [rec["messages_cum"] for rec in iterations]
    assert all(b >= a for a, b in zip(cums, cums[1:]))
    assert cums[0] >= 0
    bytes_cum = [rec["bytes_cum"] for rec in iterations]
    assert all(b >= a for a, b in zip(bytes_cum, bytes_cum[1:]))
    changed = [rec["beliefs_changed"] for rec in iterations]
    assert all(0 <= c <= trace["meta"]["n_unknowns"] for c in changed)


def _check_timer_tree(timers: dict) -> None:
    """Every parent phase's total covers the sum of its direct children."""
    for path, entry in timers.items():
        children = sum(
            e["seconds"]
            for p, e in timers.items()
            if p.startswith(path + "/") and "/" not in p[len(path) + 1:]
        )
        assert entry["seconds"] >= children - 1e-9, (
            f"timer {path!r} ({entry['seconds']}) < sum of children ({children})"
        )


@pytest.mark.parametrize("cfg", GRID_CONFIGS, ids=lambda c: (
    f"g{c.grid_size}-{c.schedule}-d{c.damping}-{'mp' if c.max_product else 'sp'}"
))
class TestGridTraceInvariants:
    def test_invariants(self, scenario, cfg):
        _, ms = scenario
        tracer = Tracer()
        result = GridBPLocalizer(config=cfg, tracer=tracer).localize(ms)
        trace = result.telemetry
        _check_trace_invariants(trace)
        _check_timer_tree(trace["timers"])
        # counters agree with the result's own accounting
        assert trace["counters"]["messages"] == result.messages_sent
        assert trace["counters"]["bp_iterations"] == result.n_iterations

    def test_null_tracer_bit_identical(self, scenario, cfg):
        _, ms = scenario
        traced = GridBPLocalizer(config=cfg, tracer=Tracer()).localize(ms)
        untraced = GridBPLocalizer(config=cfg).localize(ms)
        assert np.array_equal(traced.estimates, untraced.estimates)
        for u, b in untraced.extras["beliefs"].items():
            assert np.array_equal(b, traced.extras["beliefs"][u])


class TestNBPTraceInvariants:
    def test_invariants(self, scenario):
        _, ms = scenario
        tracer = Tracer()
        cfg = NBPConfig(n_particles=40, n_iterations=3)
        result = NBPLocalizer(config=cfg, tracer=tracer).localize(ms, rng=7)
        trace = result.telemetry
        _check_trace_invariants(trace)
        _check_timer_tree(trace["timers"])
        assert trace["counters"]["messages"] == result.messages_sent
        assert len(trace["iterations"]) == cfg.n_iterations

    def test_null_tracer_bit_identical(self, scenario):
        _, ms = scenario
        cfg = NBPConfig(n_particles=40, n_iterations=3)
        traced = NBPLocalizer(config=cfg, tracer=Tracer()).localize(ms, rng=7)
        untraced = NBPLocalizer(config=cfg).localize(ms, rng=7)
        assert np.array_equal(traced.estimates, untraced.estimates)


class TestFactorGraphBPTrace:
    def test_residuals_recorded_and_nonnegative(self):
        from repro.bayesnet.beliefprop import BeliefPropagation
        from repro.bayesnet.factor import DiscreteFactor
        from repro.bayesnet.graph import FactorGraph

        rng = np.random.default_rng(3)
        factors = [
            DiscreteFactor(["a", "b"], (3, 3), rng.uniform(0.1, 1, (3, 3))),
            DiscreteFactor(["b", "c"], (3, 3), rng.uniform(0.1, 1, (3, 3))),
        ]
        tracer = Tracer()
        bp = BeliefPropagation(FactorGraph(factors), tracer=tracer)
        result = bp.run()
        trace = tracer.snapshot()
        assert len(trace["iterations"]) == result.n_iterations
        got = [rec["residual"] for rec in trace["iterations"]]
        assert got == result.residuals
        assert all(r >= 0 for r in got)
        cums = [rec["messages_cum"] for rec in trace["iterations"]]
        assert all(b >= a for a, b in zip(cums, cums[1:]))
        assert trace["meta"]["converged"] == result.converged

    def test_tracing_does_not_change_beliefs(self):
        from repro.bayesnet.beliefprop import BeliefPropagation
        from repro.bayesnet.factor import DiscreteFactor
        from repro.bayesnet.graph import FactorGraph

        rng = np.random.default_rng(4)
        factors = [
            DiscreteFactor(["x", "y"], (2, 2), rng.uniform(0.1, 1, (2, 2))),
            DiscreteFactor(["y"], (2,), rng.uniform(0.1, 1, 2)),
        ]
        plain = BeliefPropagation(FactorGraph(factors)).run()
        traced = BeliefPropagation(FactorGraph(factors), tracer=Tracer()).run()
        for v in plain.beliefs:
            assert np.array_equal(plain.beliefs[v], traced.beliefs[v])
