"""Tests for posterior-uncertainty calibration metrics."""

import numpy as np
import pytest

from repro.core import GridBPConfig, GridBPLocalizer
from repro.measurement import GaussianRanging, observe
from repro.metrics import calibration_ratio, coverage_at_sigma, predicted_rms
from repro.network import NetworkConfig, UnitDiskRadio, generate_network


@pytest.fixture(scope="module")
def scenario():
    net = generate_network(
        NetworkConfig(
            n_nodes=60,
            anchor_ratio=0.15,
            radio=UnitDiskRadio(0.25),
            require_connected=True,
        ),
        rng=2,
    )
    ms = observe(net, GaussianRanging(0.02), rng=3)
    res = GridBPLocalizer(
        config=GridBPConfig(grid_size=16, max_iterations=10)
    ).localize(ms)
    return net, res


class TestPredictedRMS:
    def test_shape_and_anchor_nan(self, scenario):
        net, res = scenario
        pred = predicted_rms(res)
        assert pred.shape == (net.n_nodes,)
        assert np.isnan(pred[net.anchor_mask]).all()
        assert np.isfinite(pred[~net.anchor_mask]).all()

    def test_quantization_floor(self, scenario):
        net, res = scenario
        pred = predicted_rms(res)
        grid = res.extras["grid"]
        floor = np.sqrt((grid.cell_width**2 + grid.cell_height**2) / 12.0)
        assert (pred[~net.anchor_mask] >= floor - 1e-12).all()

    def test_requires_belief_extras(self, scenario):
        net, res = scenario
        from repro.core.result import LocalizationResult

        bare = LocalizationResult(
            res.estimates.copy(), res.localized_mask.copy(), "x"
        )
        with pytest.raises(ValueError):
            predicted_rms(bare)


class TestCalibrationRatio:
    def test_reasonable_band(self, scenario):
        # Loopy BP posteriors are known to be overconfident; the ratio
        # should exceed 1 but stay within a small constant factor.
        net, res = scenario
        ratio = calibration_ratio(res, net.positions)
        assert 0.7 < ratio < 4.0

    def test_detects_overconfidence_direction(self, scenario):
        # More damping -> less double counting -> better calibrated.
        net, _ = scenario
        ms = observe(net, GaussianRanging(0.02), rng=3)
        tight = GridBPLocalizer(
            config=GridBPConfig(grid_size=16, max_iterations=10, damping=0.0)
        ).localize(ms)
        damped = GridBPLocalizer(
            config=GridBPConfig(grid_size=16, max_iterations=10, damping=0.5)
        ).localize(ms)
        r_tight = calibration_ratio(tight, net.positions)
        r_damped = calibration_ratio(damped, net.positions)
        assert r_damped <= r_tight + 0.3


class TestCoverageAtSigma:
    def test_monotone_in_k(self, scenario):
        net, res = scenario
        cov = [coverage_at_sigma(res, net.positions, k) for k in (1, 2, 3, 5)]
        assert all(b >= a for a, b in zip(cov, cov[1:]))
        assert 0.0 <= cov[0] <= 1.0

    def test_huge_k_covers_everything(self, scenario):
        net, res = scenario
        assert coverage_at_sigma(res, net.positions, 50.0) == pytest.approx(1.0)

    def test_validation(self, scenario):
        net, res = scenario
        with pytest.raises(ValueError):
            coverage_at_sigma(res, net.positions, 0.0)
