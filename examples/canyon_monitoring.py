#!/usr/bin/env python3
"""Irregular (C-shaped) deployment: where hop-count methods break.

Sensors monitor a canyon rim — a C-shaped region around a void (the
canyon).  Shortest paths between nodes detour around the void, so DV-Hop
and MDS-MAP systematically overestimate cross-void distances and warp the
map.  The Bayesian localizer degrades far less, and the *region prior*
("nodes are on the rim, not in the canyon") — pre-knowledge that costs the
operator nothing — tightens it further.

Run:  python examples/canyon_monitoring.py
"""

from repro import (
    CShapeDeployment,
    CooperativeLocalizer,
    DVHopLocalizer,
    GaussianRanging,
    MDSMAPLocalizer,
    NetworkConfig,
    RegionPrior,
    UnitDiskRadio,
    generate_network,
    observe,
    summarize_errors,
)

SEED = 23


def main() -> None:
    shape = CShapeDeployment(notch_width=0.6, notch_height=0.4)
    config = NetworkConfig(
        n_nodes=120,
        anchor_ratio=0.12,
        deployment=shape,
        radio=UnitDiskRadio(0.20),
        require_connected=True,
    )
    net = generate_network(config, rng=SEED)
    measurements = observe(net, GaussianRanging(0.02), rng=SEED + 1)
    unknown = ~net.anchor_mask
    print(
        f"C-shaped network: {net.n_nodes} nodes, {net.n_anchors} anchors, "
        f"mean degree {net.mean_degree():.1f}\n"
    )

    region_prior = RegionPrior(shape.contains)
    rows = [
        (
            "BN + region pre-knowledge",
            CooperativeLocalizer("grid-bp", prior=region_prior).localize(measurements),
        ),
        (
            "BN (no prior)            ",
            CooperativeLocalizer("grid-bp").localize(measurements),
        ),
        ("DV-Hop                   ", DVHopLocalizer().localize(measurements)),
        ("MDS-MAP                  ", MDSMAPLocalizer().localize(measurements)),
    ]
    for label, result in rows:
        s = summarize_errors(result.errors(net.positions), net.radio_range, unknown)
        print(
            f"{label}: mean {s.mean_norm:.2f} r, p90 {s.p90_norm:.2f} r, "
            f"coverage {s.coverage:.0%}"
        )
    print(
        "\nHop-based methods warp across the void; the Bayesian network"
        "\nonly relies on local geometry, and the free region prior helps more."
    )


if __name__ == "__main__":
    main()
