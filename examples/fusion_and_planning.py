#!/usr/bin/env python3
"""Deployment planning and sensor fusion.

Two later-stage capabilities on top of the core reproduction:

1. **Anchor planning** — before installing hardware, choose which nodes
   get GPS by greedily minimizing the cooperative Cramér–Rao bound on the
   planned geometry (no localization runs needed).
2. **Sensor fusion** — nodes with angle-of-arrival arrays contribute
   bearing potentials that the Bayesian network multiplies into the same
   inference; ranges and bearings are complementary, so the fused
   posterior is much tighter.

Run:  python examples/fusion_and_planning.py
"""

import numpy as np

from repro import (
    BearingModel,
    GaussianRanging,
    GridBPConfig,
    GridBPLocalizer,
    NetworkConfig,
    UnitDiskRadio,
    WSNetwork,
    generate_network,
    observe,
)
from repro.experiments import greedy_crlb_anchors, mean_crlb
from repro.network.generator import select_anchors

SEED = 55
N_ANCHORS = 5


def evaluate(net, label, bearings=None):
    ms = observe(net, GaussianRanging(0.02), rng=SEED + 2, bearings=bearings)
    res = GridBPLocalizer(config=GridBPConfig(grid_size=18, max_iterations=10)).localize(ms)
    err = res.errors(net.positions)[~net.anchor_mask]
    print(f"  {label}: mean error {np.nanmean(err):.4f}")


def main() -> None:
    base = generate_network(
        NetworkConfig(
            n_nodes=60,
            anchor_ratio=0.1,  # placeholder; anchors re-chosen below
            radio=UnitDiskRadio(0.25),
            require_connected=True,
        ),
        rng=SEED,
    )
    ranging = GaussianRanging(0.02)

    print("— anchor planning (same geometry, different anchor choice) —")
    placements = {
        "random   ": select_anchors(base.positions, N_ANCHORS, "random", rng=SEED + 1),
        "perimeter": select_anchors(
            base.positions, N_ANCHORS, "perimeter", rng=SEED + 1
        ),
        "CRLB-greedy": greedy_crlb_anchors(
            base.positions, base.adjacency, N_ANCHORS, ranging, 0.25, rng=SEED + 1
        ),
    }
    nets = {}
    for label, mask in placements.items():
        net = WSNetwork(
            base.positions, mask, base.adjacency, radio_range=0.25
        )
        nets[label] = net
        print(f"  {label}: mean CRLB {mean_crlb(net, ranging):.4f}")
        evaluate(net, f"{label} (measured)")

    print("\n— sensor fusion on the CRLB-planned network —")
    net = nets["CRLB-greedy"]
    evaluate(net, "ranging only          ")
    evaluate(net, "ranging + AoA (9 deg) ", bearings=BearingModel(0.15))
    evaluate(net, "ranging + AoA (3 deg) ", bearings=BearingModel(0.05))


if __name__ == "__main__":
    main()
