#!/usr/bin/env python3
"""Aerial-drop scenario: pre-knowledge from a flight plan.

A plane drops sensors at planned grid waypoints; wind scatters them.  The
operator knows the *intended* grid — that flight plan is the
pre-knowledge.  This example shows how strongly the deployment record
helps when anchors are scarce (5 %), and what happens when the plan is
wrong (all drops drifted downwind but the operator doesn't know it).

Run:  python examples/aerial_drop_deployment.py
"""

import numpy as np

from repro import (
    CooperativeLocalizer,
    GaussianRanging,
    GridDeployment,
    NetworkConfig,
    PerNodePrior,
    UnitDiskRadio,
    generate_network,
    observe,
    summarize_errors,
)

SEED = 11
JITTER = 0.05  # wind scatter around each waypoint


def run(prior, label, measurements, net):
    result = CooperativeLocalizer("grid-bp", prior=prior).localize(measurements)
    summary = summarize_errors(
        result.errors(net.positions), net.radio_range, ~net.anchor_mask
    )
    print(f"{label}: mean {summary.mean_norm:.2f} r, median {summary.median_norm:.2f} r")


def main() -> None:
    deployment = GridDeployment(jitter=JITTER)
    config = NetworkConfig(
        n_nodes=100,
        anchor_ratio=0.05,  # very few anchors: pre-knowledge matters most here
        deployment=deployment,
        radio=UnitDiskRadio(0.20),
        require_connected=True,
    )
    net = generate_network(config, rng=SEED)
    measurements = observe(net, GaussianRanging(0.02), rng=SEED + 1)
    waypoints = deployment.grid_points(net.n_nodes)

    print(f"{net.n_nodes} nodes dropped at a planned grid, {net.n_anchors} anchors\n")

    # The flight plan as a calibrated prior: σ matches the true wind scatter.
    run(
        PerNodePrior(waypoints, sigma=JITTER),
        "flight-plan prior (calibrated)  ",
        measurements,
        net,
    )
    # Overconfident prior: operator underestimates the wind.
    run(
        PerNodePrior(waypoints, sigma=JITTER / 4),
        "flight-plan prior (overconfident)",
        measurements,
        net,
    )
    # Biased plan: every drop drifted 0.15 downwind, operator unaware.
    run(
        PerNodePrior(waypoints, sigma=JITTER, offset=(0.15, 0.0)),
        "flight-plan prior (biased plan)  ",
        measurements,
        net,
    )
    # No pre-knowledge at all.
    run(None, "no pre-knowledge                ", measurements, net)


if __name__ == "__main__":
    main()
