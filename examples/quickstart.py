#!/usr/bin/env python3
"""Quickstart: localize one random sensor network three ways.

Generates a 100-node network with 10 % anchors, takes noisy RSSI-free
Gaussian range measurements, and compares:

1. the Bayesian-network localizer *with* pre-knowledge (a noisy record of
   where each node was meant to be deployed),
2. the same inference *without* pre-knowledge,
3. the classic DV-Hop baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CooperativeLocalizer,
    DVHopLocalizer,
    GaussianRanging,
    NetworkConfig,
    PerNodePrior,
    UnitDiskRadio,
    generate_network,
    observe,
    summarize_errors,
)

SEED = 7


def main() -> None:
    # 1. Deploy the network ------------------------------------------------
    config = NetworkConfig(
        n_nodes=100,
        anchor_ratio=0.10,
        radio=UnitDiskRadio(0.20),
        require_connected=True,
    )
    net = generate_network(config, rng=SEED)
    print(
        f"network: {net.n_nodes} nodes, {net.n_anchors} anchors, "
        f"mean degree {net.mean_degree():.1f}"
    )

    # 2. Observe it --------------------------------------------------------
    ranging = GaussianRanging(sigma=0.02)  # 10 % of the radio range
    measurements = observe(net, ranging, rng=SEED + 1)

    # 3. Pre-knowledge: the operator's noisy deployment record --------------
    rng = np.random.default_rng(SEED + 2)
    deployment_record = net.positions + rng.normal(0.0, 0.08, size=(net.n_nodes, 2))
    pre_knowledge = PerNodePrior(deployment_record, sigma=0.08)

    # 4. Localize three ways -------------------------------------------------
    unknown = ~net.anchor_mask
    for label, result in [
        (
            "Bayesian network + pre-knowledge",
            CooperativeLocalizer("grid-bp", prior=pre_knowledge).localize(
                measurements
            ),
        ),
        (
            "Bayesian network (no prior)     ",
            CooperativeLocalizer("grid-bp").localize(measurements),
        ),
        (
            "DV-Hop baseline                 ",
            DVHopLocalizer().localize(measurements),
        ),
    ]:
        errors = result.errors(net.positions)
        summary = summarize_errors(errors, net.radio_range, unknown)
        print(
            f"{label}: mean error {summary.mean:.4f} "
            f"({summary.mean_norm:.2f} r), coverage {summary.coverage:.0%}"
        )


if __name__ == "__main__":
    main()
