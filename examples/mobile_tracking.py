#!/usr/bin/env python3
"""Mobile network tracking: yesterday's posterior is today's pre-knowledge.

Nodes drift by a random walk.  Two trackers follow them:

* the sequential Bayesian tracker — each step's posterior, diffused
  through the motion model, becomes the next step's prior (the temporal
  form of pre-knowledge);
* Monte-Carlo Localization (Hu & Evans 2004), the classic range-free
  particle baseline.

A memoryless localizer (fresh inference each step) shows what the motion
pre-knowledge is worth.

Run:  python examples/mobile_tracking.py
"""

import numpy as np

from repro import GaussianRanging, NetworkConfig, UnitDiskRadio, generate_network, observe
from repro.core import GridBPConfig, GridBPLocalizer
from repro.mobility import MCLTracker, RandomWalkMobility, SequentialGridTracker
from repro.network import WSNetwork

SEED = 31
N_STEPS = 10
STEP_SIGMA = 0.025


def memoryless_errors(traj, net, radio, ranging, rng):
    """Fresh (prior-free) grid BP at every step, for comparison."""
    gen = np.random.default_rng(rng)
    cfg = GridBPConfig(grid_size=20, max_iterations=8)
    out = []
    for t in range(len(traj)):
        snapshot = WSNetwork(
            positions=traj[t],
            anchor_mask=net.anchor_mask,
            adjacency=radio.adjacency(traj[t], gen),
            radio_range=radio.range_,
        )
        ms = observe(snapshot, ranging, gen)
        res = GridBPLocalizer(config=cfg).localize(ms, gen)
        err = res.errors(traj[t])
        out.append(float(np.nanmean(err[~net.anchor_mask])))
    return np.array(out)


def main() -> None:
    radio = UnitDiskRadio(0.25)
    net = generate_network(
        NetworkConfig(
            n_nodes=60, anchor_ratio=0.15, radio=radio, require_connected=True
        ),
        rng=SEED,
    )
    mobility = RandomWalkMobility(step_sigma=STEP_SIGMA)
    traj = mobility.trajectory(net.positions, N_STEPS, rng=SEED + 1)
    ranging = GaussianRanging(0.02)
    unknown = ~net.anchor_mask

    tracker = SequentialGridTracker(
        radio,
        ranging,
        motion_sigma=1.5 * STEP_SIGMA,
        config=GridBPConfig(grid_size=20, max_iterations=8),
    )
    bayes = tracker.track(traj, net.anchor_mask, rng=SEED + 2)
    bayes_err = bayes.mean_error_per_step(traj, unknown)

    mcl = MCLTracker(radio, v_max=4 * STEP_SIGMA, n_particles=150)
    mcl_res = mcl.track(traj, net.anchor_mask, rng=SEED + 3)
    mcl_err = mcl_res.mean_error_per_step(traj, unknown)

    fresh_err = memoryless_errors(traj, net, radio, ranging, SEED + 4)

    print(f"{net.n_nodes} mobile nodes, {net.n_anchors} anchors, {N_STEPS} steps\n")
    print("step  bayes-tracker  memoryless-BN  MCL(range-free)")
    for t in range(N_STEPS + 1):
        print(
            f"{t:4d}  {bayes_err[t]:13.4f}  {fresh_err[t]:13.4f}  {mcl_err[t]:15.4f}"
        )
    print(
        f"\nsteady-state means (steps 3+): "
        f"bayes {bayes_err[3:].mean():.4f}, "
        f"memoryless {fresh_err[3:].mean():.4f}, "
        f"MCL {mcl_err[3:].mean():.4f}"
    )


if __name__ == "__main__":
    main()
