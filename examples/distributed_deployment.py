#!/usr/bin/env python3
"""Distributed execution: the same inference, one mailbox at a time.

The Bayesian-network localizer is designed to run *on the sensor nodes
themselves*: each node holds its own belief, and one BP iteration is one
radio broadcast round.  This example runs the distributed simulator
(per-node agents, explicit mailboxes, counted messages) and verifies it
reaches the same answer as the centralized solver, then prints the
accuracy-vs-communication trade-off round by round.

Run:  python examples/distributed_deployment.py
"""

import numpy as np

from repro import GaussianRanging, NetworkConfig, UnitDiskRadio, generate_network, observe
from repro.core import GridBPConfig, GridBPLocalizer
from repro.metrics import error_per_iteration
from repro.parallel import DistributedBPSimulator

SEED = 47


def main() -> None:
    net = generate_network(
        NetworkConfig(
            n_nodes=80,
            anchor_ratio=0.1,
            radio=UnitDiskRadio(0.22),
            require_connected=True,
        ),
        rng=SEED,
    )
    ms = observe(net, GaussianRanging(0.02), rng=SEED + 1)
    unknown = ~net.anchor_mask
    cfg = GridBPConfig(grid_size=20, max_iterations=10, tol=1e-9, record_trace=True)

    central = GridBPLocalizer(config=cfg).localize(ms)
    distributed, rounds = DistributedBPSimulator(config=cfg).run(ms)

    gap = np.nanmax(
        np.abs(central.estimates[unknown] - distributed.estimates[unknown])
    )
    print(f"max |centralized − distributed| estimate gap: {gap:.2e}\n")

    curve = error_per_iteration(central, net.positions, unknown)
    print("round  messages  cumulative-kB  mean-error/r")
    cum_bytes = 0
    print(f"{0:5d}  {0:8d}  {0:13.1f}  {curve[0] / net.radio_range:12.3f}")
    for s in rounds:
        cum_bytes += s.bytes
        err = curve[min(s.round_index, len(curve) - 1)]
        print(
            f"{s.round_index:5d}  {s.messages:8d}  {cum_bytes / 1024:13.1f}  "
            f"{err / net.radio_range:12.3f}"
        )
    print(
        "\nMost of the accuracy arrives in the first few broadcast rounds —"
        "\nthe basis of the cost/accuracy trade-off in experiment E7."
    )


if __name__ == "__main__":
    main()
